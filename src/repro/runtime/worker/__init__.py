"""The one worker loop every execution backend runs.

A *worker* owns one operator instance (a continuous join or a retractable
revision join) over one shard of the key space, and drives it through the
same four steps no matter which transport delivers its input:

1. **route** — incoming watermarks are min-merged per channel
   (:class:`~repro.runtime.channel.ChannelWatermarks`: the stage output
   watermark is the min over upstream partitions), events and revisions pass
   through;
2. **operate** — the element is fed to the operator (``join.process``);
3. **emit** — operator outputs are key-routed to downstream workers (one
   stable-hash partition per revision, watermarks broadcast) or collected
   locally when the spec has no downstream;
4. **close-sentinel** — when every producer has signalled done, the operator
   is closed, remaining outputs flushed, and one done sentinel sent per
   downstream (edge × partition) channel.

Worker *specs* describe everything the loop needs — operator construction,
watermark channels, producer counts, downstream routing entries — as plain
picklable dataclasses (:class:`repro.parallel.StreamShardSpec`,
:class:`repro.parallel.stream_exec.DataflowNodeSpec`), so the identical loop
runs in the caller's thread, in a thread pool, in a forked process, or on a
remote host behind the socket transport.

``python -m repro.runtime.worker --listen HOST:PORT`` starts a standalone
worker server that joins a placement map (see
:mod:`repro.runtime.sockets`) — the entry point of distributed execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Protocol, Sequence

from ...relation import TPTuple, stable_key_hash
from ...stream.elements import LEFT, RIGHT, Tagged, Watermark
from ..channel import ChannelWatermarks

#: The channel id the driver uses for source-edge watermarks of single-stage
#: (stream shard) jobs.
SOURCE_CHANNEL = "src"


class Emitter(Protocol):
    """Where a worker's outputs go; each transport provides one."""

    def send(self, target: int, channel: Hashable, tagged: Tagged) -> None:
        """Deliver one element to worker ``target`` (``channel`` names the
        watermark channel; ``None`` for key-routed events/revisions)."""

    def done(self, target: int) -> None:
        """Signal worker ``target`` that one of its producers finished."""

    def flush(self) -> None:
        """Push out any buffered micro-batches (no-op for unbuffered emitters)."""


class WorkerSpec(Protocol):
    """What the loop needs to know about one worker (structural typing)."""

    index: int
    producers: int
    left_channels: Sequence[Hashable]
    right_channels: Sequence[Hashable]
    downstream: Sequence[tuple]

    def build_join(self): ...

    @property
    def collect_outputs(self) -> bool: ...

    @property
    def channel_id(self) -> Hashable: ...

    def report(self, join, outputs: Optional[List[TPTuple]]) -> "WorkerReport": ...


@dataclass
class WorkerReport:
    """What one worker hands back to the driver after settling.

    ``outputs`` is the worker's contribution to the settled result (collected
    stream outputs, or a dataflow node's settled window tuples); ``stats`` is
    the revision-counter tuple of a dataflow node (``None`` for stream
    shards, which report ``late_dropped`` instead).
    """

    index: int
    outputs: List[TPTuple] = field(default_factory=list)
    emit_latencies: List[float] = field(default_factory=list)
    emit_event_lags: List[float] = field(default_factory=list)
    late_dropped: int = 0
    stats: Optional[tuple] = None


def encode_report(report: WorkerReport) -> tuple:
    """Flatten a report into primitives for the process/socket boundary."""
    from ...parallel.serialize import encode_tuples

    return (
        report.index,
        encode_tuples(report.outputs),
        list(report.emit_latencies),
        list(report.emit_event_lags),
        report.late_dropped,
        report.stats,
    )


def decode_report(code: tuple) -> WorkerReport:
    """Rebuild a report from its encoding."""
    from ...parallel.serialize import decode_tuples

    index, outputs, latencies, lags, late, stats = code
    return WorkerReport(
        index=index,
        outputs=decode_tuples(outputs),
        emit_latencies=list(latencies),
        emit_event_lags=list(lags),
        late_dropped=late,
        stats=tuple(stats) if stats is not None else None,
    )


class Worker:
    """Spec-driven operator state machine: route → operate → emit → close."""

    def __init__(self, spec: WorkerSpec, emitter: Emitter) -> None:
        self.spec = spec
        self.emitter = emitter
        self.join = spec.build_join()
        # Optional in-process observation hooks (the serving layer's seam):
        # ``tap(channel_id, element)`` sees every output element live,
        # ``probe(channel_id, join)`` sees the operator instance at start-up.
        # Read via getattr so specs without the fields keep working; both are
        # callables and therefore only usable on in-process transports.
        self._tap = getattr(spec, "tap", None)
        probe = getattr(spec, "probe", None)
        if probe is not None:
            probe(spec.channel_id, self.join)
        self._trackers = {
            LEFT: ChannelWatermarks(spec.left_channels),
            RIGHT: ChannelWatermarks(spec.right_channels),
        }
        self._outputs: Optional[List[TPTuple]] = [] if spec.collect_outputs else None
        self._finished = False

    def accept(self, channel: Hashable, tagged: Tagged) -> None:
        """Process one delivered element (step 1 + 2 + 3)."""
        element = tagged.element
        if isinstance(element, Watermark):
            merged = self._trackers[tagged.side].update(channel, element.value)
            if merged is None:
                return
            tagged = Tagged(tagged.side, Watermark(merged), tagged.ingest_clock)
        self._dispatch(self.join.process(tagged))

    def finish(self) -> WorkerReport:
        """Close the operator, flush, send done sentinels, build the report."""
        self._dispatch(self.join.close())
        self._finished = True
        # One done sentinel per (edge × consumer partition), matching the
        # producer counts compiled into the specs (duplicate edges to one
        # consumer — a self-join shape — each carry their own sentinel).
        for first, consumer_parts, _side, _key_indices in self.spec.downstream:
            for offset in range(consumer_parts):
                self.emitter.done(first + offset)
        return self.spec.report(self.join, self._outputs)

    @property
    def finished(self) -> bool:
        return self._finished

    def _dispatch(self, elements) -> None:
        if self._tap is not None:
            for element in elements:
                self._tap(self.spec.channel_id, element)
        if self._outputs is not None:
            self._outputs.extend(elements)
            return
        channel = self.spec.channel_id
        for element in elements:
            for first, consumer_parts, side, key_indices in self.spec.downstream:
                if isinstance(element, Watermark):
                    for offset in range(consumer_parts):
                        self.emitter.send(first + offset, channel, Tagged(side, element))
                else:
                    if consumer_parts > 1:
                        key = tuple(element.tuple.fact[i] for i in key_indices)
                        offset = stable_key_hash(key) % consumer_parts
                    else:
                        offset = 0
                    self.emitter.send(first + offset, None, Tagged(side, element))


class Inbox(Protocol):
    """A worker's input: batches of ``(channel, tagged)`` until producers end."""

    def take_batch(self, max_size: int) -> Optional[List[tuple]]: ...


def run_worker(spec: WorkerSpec, inbox: Inbox, emitter: Emitter, micro_batch_size: int) -> WorkerReport:
    """Drive one worker to settlement over a pull-based inbox.

    The loop every pull transport (threads, processes, sockets) runs: drain
    micro-batches until the inbox reports all producers done (``None``),
    flushing buffered downstream sends after each batch, then close.
    """
    worker = Worker(spec, emitter)
    while True:
        batch = inbox.take_batch(micro_batch_size)
        if batch is None:
            break
        for channel, tagged in batch:
            worker.accept(channel, tagged)
        emitter.flush()
    report = worker.finish()
    emitter.flush()
    return report


# --------------------------------------------------------------------------- #
# standalone worker entry point
# --------------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.runtime.worker --listen HOST:PORT``.

    Starts a socket-transport worker server on this host.  A driver whose
    :class:`~repro.runtime.placement.Placement` names this address ships the
    worker its spec and the full address map per job; the server runs any
    number of jobs, sequentially or concurrently, until stopped.

    SIGTERM and SIGINT shut the server down gracefully: the listener stops
    accepting, in-flight jobs drain to completion (their result frames
    still reach the driver), and the process exits 0.  ``--idle-timeout``
    exits the same way after that many seconds without a connection or
    running job.
    """
    import argparse
    import signal
    import threading

    from ..placement import parse_host_port
    from ..sockets import serve

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.worker",
        description="Socket-transport worker: joins a placement map and runs "
        "shipped worker specs until stopped (SIGTERM/SIGINT drain gracefully).",
    )
    parser.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="address to listen on (use the same value in the driver's placement)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="exit after the first job completes (used by spawned local workers)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit once no job or connection has been active for this long",
    )
    arguments = parser.parse_args(argv)
    host, port = parse_host_port(arguments.listen)
    shutdown = threading.Event()
    received: List[int] = []

    def request_shutdown(signum, _frame) -> None:
        # Signal-handler safe: just record and set the event; the serve
        # loop notices within its accept timeout and drains.  (Printing
        # here could re-enter a stdout write interrupted by the signal.)
        received.append(signum)
        shutdown.set()

    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, request_shutdown)
    serve(
        host,
        port,
        once=arguments.once,
        shutdown=shutdown,
        idle_timeout=arguments.idle_timeout,
    )
    if received:
        print(
            f"repro runtime worker shut down cleanly "
            f"({signal.Signals(received[0]).name}: jobs drained, sockets closed)",
            flush=True,
        )
    return 0

