"""The socket transport: runtime workers behind TCP endpoints.

The first distributed backend.  Topologically it is the process transport
with the ``multiprocessing`` queues swapped for TCP connections:

* every worker is a server (driver-spawned local process by default, or a
  remote ``python -m repro.runtime.worker --listen HOST:PORT`` named in the
  :class:`~repro.runtime.placement.Placement`);
* the driver connects to each worker and ships a *job* frame — the worker's
  picklable spec, the fully resolved worker-index → address map, and the
  channel knobs — then streams micro-batches of codec-encoded elements
  (:mod:`repro.parallel.serialize`) as length-prefixed pickle frames;
* workers open direct worker→worker connections for downstream routing (the
  address map makes peers addressable without relaying through the driver);
* done sentinels are ``("done", job)`` frames counted against the spec's
  producer count, exactly like the queue backend's ``None`` messages;
* each worker answers its driver connection with one result (or marshalled
  traceback) frame after settling.

Backpressure survives the boundary: a server connection feeds a bounded
:class:`~repro.runtime.channel.Channel`; when it fills, the reader stops
reading, the kernel's TCP window closes, and the sender's ``sendall``
blocks — the socket edition of a full queue.

Emit latencies and trace-span timestamps stay directly comparable across
*local* socket workers because ``time.perf_counter`` reads the system-wide
monotonic clock.  Across real hosts they are normalized: every worker sends
a ``("anchor", job, index, (wall_clock, perf_counter))`` frame in the job
handshake, the driver estimates the perf-counter offset from it (trusting
NTP-synchronized wall clocks), shifts incoming spans and report latencies
onto its own clock scale, and surfaces the estimate as
``WorkerReport.clock_offset``.
"""

from __future__ import annotations

import logging
import pickle
import socket
import struct
import threading
import traceback
import uuid
from typing import Dict, Hashable, List, Optional

from ..obs.metrics import DEFAULT_METRICS_INTERVAL
from ..obs.trace import clock_anchor, estimate_clock_offset, shift_spans
from ..recovery.types import SeatFailure
from ..stream.elements import Tagged
from . import wire
from .channel import Channel, ChannelClosed
from .placement import Placement, parse_host_port
from .transport import (
    BatchingEmitter,
    RuntimeJob,
    Transport,
    TransportSession,
    WorkerStartError,
    preferred_context,
)
from .worker import WorkerReport, decode_report, encode_report, run_worker

_LOGGER = logging.getLogger(__name__)

_HEADER = struct.Struct("!I")
#: How long a peer connection waits for its job frame to arrive before
#: giving up (the driver sends every job frame before routing any element,
#: so in practice this only trips on abandoned runs).
_JOB_WAIT_SECONDS = 60.0
#: How long the driver waits for spawned local workers to report their port.
_SPAWN_WAIT_SECONDS = 30.0


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #
def send_frame(sock: socket.socket, payload: object) -> None:
    """Ship one length-prefixed pickled frame."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(data)) + data)


def send_raw_frame(sock: socket.socket, data: bytes) -> None:
    """Ship one length-prefixed pre-encoded frame (binary wire payloads)."""
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_frame(file) -> Optional[object]:
    """Read one frame from a buffered socket file; ``None`` on EOF.

    Frames self-identify by first byte: binary column frames
    (:mod:`repro.runtime.wire`, columnar-layout micro-batches) decode
    through the wire codec, everything else unpickles — both peers of a
    connection can mix the two freely.
    """
    header = file.read(_HEADER.size)
    if len(header) < _HEADER.size:
        return None
    (length,) = _HEADER.unpack(header)
    data = file.read(length)
    if len(data) < length:
        return None
    return wire.decode_payload(data)


# --------------------------------------------------------------------------- #
# worker server
# --------------------------------------------------------------------------- #
class _EncodedChannelInbox:
    """Decode codec entries drained from the connection-fed channel."""

    def __init__(self, channel: Channel) -> None:
        from ..parallel.serialize import decode_revision_tagged

        self._decode = decode_revision_tagged
        #: Exposed for the worker loop's inbox occupancy gauges.
        self.channel = channel

    def take_batch(self, max_size: int) -> Optional[List[tuple]]:
        batch = self.channel.take_batch(max_size)
        if batch is None:
            return None
        return [(channel, self._decode(code)) for channel, code in batch]


class _PeerPutter:
    """Worker-side delivery to downstream peers over cached connections.

    With ``binary=True`` (columnar layout) micro-batches ship as binary
    column frames — no pickle on the element hot path.  A batch the fixed
    layout cannot express falls back to one pickled frame; the receiver
    dispatches per frame, so the mix is safe.
    """

    def __init__(self, addresses, job_key: str, binary: bool = False) -> None:
        self._addresses = addresses
        self._job_key = job_key
        self._binary = binary
        self._connections: Dict[int, socket.socket] = {}

    def _connection(self, target: int) -> socket.socket:
        connection = self._connections.get(target)
        if connection is None:
            connection = socket.create_connection(
                parse_host_port(self._addresses[target]), timeout=_JOB_WAIT_SECONDS
            )
            self._connections[target] = connection
        return connection

    def put(self, target: int, batch) -> None:
        if self._binary:
            try:
                data = wire.encode_batch_frame(self._job_key, batch)
            except wire.WireFormatError:
                pass
            else:
                send_raw_frame(self._connection(target), data)
                return
        send_frame(self._connection(target), ("batch", self._job_key, batch))

    def put_done(self, target: int) -> None:
        send_frame(self._connection(target), ("done", self._job_key))

    def close(self) -> None:
        for connection in self._connections.values():
            try:
                connection.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


class _ReplySender:
    """Serialised writes to one driver connection.

    The connection handler sends the final result frame and the worker
    thread piggybacks periodic metrics frames on the same socket, so every
    write goes through one lock.  Failures are swallowed: a driver that
    vanished mid-run simply stops receiving snapshots.
    """

    def __init__(self, connection: socket.socket) -> None:
        self._connection = connection
        self._lock = threading.Lock()

    def send(self, payload: object) -> bool:
        with self._lock:
            try:
                send_frame(self._connection, payload)
                return True
            except OSError:
                return False


class _ServerJob:
    """One job's state on a worker server: inbox, worker thread, result."""

    def __init__(
        self,
        key: str,
        spec,
        addresses,
        micro_batch_size: int,
        capacity: int,
        metrics_on: bool = False,
        metrics_interval: float = DEFAULT_METRICS_INTERVAL,
        trace_on: bool = False,
        reply: Optional[_ReplySender] = None,
        checkpoint_interval: Optional[float] = None,
        restore=None,
    ) -> None:
        self.key = key
        self.spec = spec
        self.inbox: Channel = Channel(capacity, producers=spec.producers)
        self.done_event = threading.Event()
        self.result: tuple = ("error", key, spec.index, "worker never ran")
        #: Most recent metrics snapshot per worker index, read by the
        #: entrypoint's Prometheus endpoint (``--metrics-port``).
        self.latest_metrics: Dict[int, dict] = {}
        self._metrics_on = metrics_on
        self._metrics_interval = metrics_interval
        self._trace_on = trace_on
        self._reply = reply
        self._checkpoint_interval = checkpoint_interval
        self._restore = restore
        self._thread = threading.Thread(
            target=self._run,
            args=(addresses, micro_batch_size),
            name=f"runtime-socket-worker-{spec.index}",
            daemon=True,
        )
        self._thread.start()

    def _run(self, addresses, micro_batch_size: int) -> None:
        putter = _PeerPutter(
            addresses,
            self.key,
            binary=getattr(self.spec, "layout", "object") == "columnar",
        )
        try:
            if self._reply is not None:
                # Handshake anchor: a (wall_clock, perf_counter) pair the
                # driver uses to map this worker's timestamps onto its own
                # clock scale (meaningful across real hosts; near-zero on
                # localhost).  Sent before any metrics/spans frame.
                self._reply.send(("anchor", self.key, self.spec.index, clock_anchor()))
            emitter = BatchingEmitter(putter, micro_batch_size)
            registry = None
            sink = None
            tracer = None
            trace_sink = None
            if self._metrics_on:
                from ..obs.metrics import registry_for_spec

                registry = registry_for_spec(self.spec)

                def sink(snapshot) -> None:
                    self.latest_metrics[self.spec.index] = snapshot
                    if self._reply is not None:
                        self._reply.send(
                            ("metrics", self.key, self.spec.index, snapshot)
                        )

            if self._trace_on:
                from ..obs.trace import tracer_for_spec

                tracer = tracer_for_spec(self.spec)

                if self._reply is not None:

                    def trace_sink(spans) -> None:
                        self._reply.send(("spans", self.key, self.spec.index, spans))

            checkpoint_sink = None
            if self._checkpoint_interval is not None and self._reply is not None:

                def checkpoint_sink(payload) -> None:
                    # Checkpoint frames ride the metrics-frame path: the
                    # locked reply sender serialises them with metrics/span
                    # frames on the one driver connection.
                    self._reply.send(
                        ("checkpoint", self.key, self.spec.index, payload)
                    )

            report = run_worker(
                self.spec,
                _EncodedChannelInbox(self.inbox),
                emitter,
                micro_batch_size,
                metrics=registry,
                metrics_sink=sink,
                metrics_interval=self._metrics_interval,
                tracer=tracer,
                trace_sink=trace_sink,
                restore=self._restore,
                checkpoint_sink=checkpoint_sink,
                checkpoint_interval=self._checkpoint_interval,
            )
            if report.metrics:
                self.latest_metrics[self.spec.index] = report.metrics
            self.result = ("result", self.key, self.spec.index, encode_report(report))
        except BaseException:  # noqa: BLE001 - marshalled to the driver
            self.result = ("error", self.key, self.spec.index, traceback.format_exc())
        finally:
            putter.close()
            self.done_event.set()

    def feed(self, frame) -> None:
        if frame[0] == "batch":
            for entry in frame[2]:
                self.inbox.put(entry)
        elif frame[0] == "done":
            self.inbox.producer_done()

    def abort(self) -> None:
        """The driver vanished mid-run: unblock the worker thread."""
        _LOGGER.warning(
            "job %s (worker %s) aborted: driver connection lost",
            self.key,
            self.spec.index,
        )
        self.inbox.close()


class _JobRegistry:
    """Jobs live on a server keyed by the driver-chosen job id."""

    #: How many finished jobs' metrics the registry keeps for scrapes.
    RETAIN_FINISHED = 8

    def __init__(self) -> None:
        self._jobs: Dict[str, _ServerJob] = {}
        # Finished jobs' final snapshots, insertion-ordered and bounded, so
        # the Prometheus endpoint reports the last runs between jobs too.
        self._retained: Dict[str, Dict[int, dict]] = {}
        self._condition = threading.Condition()

    def create(
        self,
        key: str,
        spec,
        addresses,
        micro_batch_size: int,
        capacity: int,
        metrics_on: bool = False,
        metrics_interval: float = DEFAULT_METRICS_INTERVAL,
        trace_on: bool = False,
        reply: Optional[_ReplySender] = None,
        checkpoint_interval: Optional[float] = None,
        restore=None,
    ) -> _ServerJob:
        job = _ServerJob(
            key,
            spec,
            addresses,
            micro_batch_size,
            capacity,
            metrics_on=metrics_on,
            metrics_interval=metrics_interval,
            trace_on=trace_on,
            reply=reply,
            checkpoint_interval=checkpoint_interval,
            restore=restore,
        )
        with self._condition:
            self._jobs[key] = job
            self._condition.notify_all()
        return job

    def jobs(self) -> List[_ServerJob]:
        """A snapshot of the currently-running jobs (metrics endpoint)."""
        with self._condition:
            return list(self._jobs.values())

    def wait_for(self, key: str) -> _ServerJob:
        with self._condition:
            found = self._condition.wait_for(
                lambda: key in self._jobs, timeout=_JOB_WAIT_SECONDS
            )
            if not found:
                raise RuntimeError(f"no job {key!r} arrived within {_JOB_WAIT_SECONDS}s")
            return self._jobs[key]

    def remove(self, key: str) -> None:
        with self._condition:
            job = self._jobs.pop(key, None)
            if job is not None and job.latest_metrics:
                self._retained[key] = dict(job.latest_metrics)
                while len(self._retained) > self.RETAIN_FINISHED:
                    self._retained.pop(next(iter(self._retained)))

    def metrics_snapshots(self) -> List[dict]:
        """Latest snapshots: retained finished jobs first, running jobs last
        (so a running job's reading wins any worker-label collision)."""
        with self._condition:
            snapshots: List[dict] = []
            for store in self._retained.values():
                snapshots.extend(store.values())
            for job in self._jobs.values():
                snapshots.extend(job.latest_metrics.values())
            return snapshots


def _read_into_job(file, job: _ServerJob, abort_on_eof: bool) -> None:
    """Pump frames from one connection into a job until EOF.

    A *peer* connection closing mid-job is normal — peers disconnect right
    after their done sentinel.  Only the driver connection's EOF means the
    run was abandoned, in which case the inbox is closed so the worker
    thread cannot wait forever on sentinels that will never come.
    """
    while True:
        frame = recv_frame(file)
        if frame is None:
            if abort_on_eof and not job.done_event.is_set():
                job.abort()
            return
        try:
            job.feed(frame)
        except ChannelClosed:
            # The job was aborted (driver vanished) while this producer was
            # still sending; drain and discard the rest of the connection.
            return


def _handle_connection(connection: socket.socket, registry: _JobRegistry, served) -> None:
    file = connection.makefile("rb")
    try:
        first = recv_frame(file)
        if first is None:
            return
        if first[0] == "job":
            # Older drivers send shorter frames (no metrics/trace knobs).
            _kind, key, spec, addresses, micro_batch_size, capacity = first[:6]
            metrics_on = first[6] if len(first) > 6 else False
            metrics_interval = first[7] if len(first) > 7 else DEFAULT_METRICS_INTERVAL
            trace_on = first[8] if len(first) > 8 else False
            checkpoint_interval = first[9] if len(first) > 9 else None
            restore = first[10] if len(first) > 10 else None
            reply = _ReplySender(connection)
            job = registry.create(
                key,
                spec,
                addresses,
                micro_batch_size,
                capacity,
                metrics_on=metrics_on,
                metrics_interval=metrics_interval,
                trace_on=trace_on,
                reply=reply,
                checkpoint_interval=checkpoint_interval,
                restore=restore,
            )
            reader = threading.Thread(
                target=_read_into_job, args=(file, job, True), daemon=True
            )
            reader.start()
            _LOGGER.debug("job %s started (worker %s)", key, spec.index)
            job.done_event.wait()
            if not reply.send(job.result):
                _LOGGER.warning(
                    "job %s: driver gone before the result frame", key
                )
            registry.remove(key)
            served.set()
            _LOGGER.debug("job %s finished (worker %s)", key, spec.index)
        else:
            job = registry.wait_for(first[1])
            try:
                job.feed(first)
            except ChannelClosed:
                # The job was aborted before this peer connected; discard.
                return
            _read_into_job(file, job, False)
    finally:
        try:
            connection.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


def serve_listener(
    listener: socket.socket,
    once: bool = False,
    shutdown: Optional[threading.Event] = None,
    idle_timeout: Optional[float] = None,
    registry: Optional[_JobRegistry] = None,
) -> None:
    """Accept and serve connections on an already-bound listener socket.

    ``shutdown`` requests a graceful stop: the accept loop exits, the
    listener closes (no new jobs), and every in-flight job is drained to
    completion before the function returns — the SIGTERM/SIGINT path of
    ``python -m repro.runtime.worker``.  ``idle_timeout`` exits the same
    way once no connection has been active for that many seconds, so a
    launch script's spare workers reap themselves instead of lingering.
    """
    import time

    if registry is None:
        registry = _JobRegistry()
    served = threading.Event()
    listener.settimeout(0.5)
    handlers: List[threading.Thread] = []
    last_activity = time.monotonic()
    try:
        while True:
            if once and served.is_set():
                break
            if shutdown is not None and shutdown.is_set():
                break
            handlers = [handler for handler in handlers if handler.is_alive()]
            if handlers:
                last_activity = time.monotonic()
            elif (
                idle_timeout is not None
                and time.monotonic() - last_activity > idle_timeout
            ):
                break
            try:
                connection, _address = listener.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - listener closed underneath
                break
            last_activity = time.monotonic()
            handler = threading.Thread(
                target=_handle_connection,
                args=(connection, registry, served),
                daemon=True,
            )
            handler.start()
            handlers.append(handler)
    finally:
        listener.close()
    # Graceful drain: in-flight jobs (and their result frames) finish before
    # the server returns, so a driver never loses a settled result to a
    # shutdown signal.
    for handler in handlers:
        handler.join(timeout=5.0)


def serve(
    host: str,
    port: int,
    once: bool = False,
    shutdown: Optional[threading.Event] = None,
    idle_timeout: Optional[float] = None,
    registry: Optional[_JobRegistry] = None,
) -> None:
    """Listen on ``host:port`` and run shipped worker specs until stopped.

    The entry point behind ``python -m repro.runtime.worker --listen``.
    Logs one ``listening on HOST:PORT`` line once the socket is bound so
    launch scripts can wait for readiness (the entrypoint configures a
    message-only stdout handler, so the line is byte-identical to the old
    ``print``).  Stops when ``shutdown`` is set (draining in-flight jobs
    first) or after ``idle_timeout`` seconds without activity; with
    neither, it serves until killed.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(128)
    bound_host, bound_port = listener.getsockname()[:2]
    _LOGGER.info("repro runtime worker listening on %s:%s", bound_host, bound_port)
    serve_listener(
        listener,
        once=once,
        shutdown=shutdown,
        idle_timeout=idle_timeout,
        registry=registry,
    )


def _local_worker_main(ready_queue, seat: int) -> None:
    """Driver-spawned local worker: bind an ephemeral port, report, serve one job."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(128)
    ready_queue.put((seat, listener.getsockname()[1]))
    serve_listener(listener, once=True)


# --------------------------------------------------------------------------- #
# driver session
# --------------------------------------------------------------------------- #
class _DriverSocketPutter:
    """Driver-side frame delivery, surfacing worker tracebacks on breakage."""

    def __init__(self, session: "SocketSession") -> None:
        self._session = session

    def _put(self, target: int, frame) -> None:
        try:
            send_frame(self._session.connections[target], frame)
        except OSError as error:
            raise self._session.connection_failure(target, error) from error

    def put(self, target: int, batch) -> None:
        spec = self._session._job.specs[target]
        if getattr(spec, "layout", "object") == "columnar":
            try:
                data = wire.encode_batch_frame(self._session.job_key, batch)
            except wire.WireFormatError:
                pass
            else:
                try:
                    send_raw_frame(self._session.connections[target], data)
                except OSError as error:
                    raise self._session.connection_failure(target, error) from error
                return
        self._put(target, ("batch", self._session.job_key, batch))

    def put_done(self, target: int) -> None:
        self._put(target, ("done", self._session.job_key))


class SocketSession(TransportSession):
    """One distributed run: local spawns + placement workers over TCP."""

    name = "sockets"

    def __init__(
        self,
        job: RuntimeJob,
        placement: Optional[Placement] = None,
        restores: Optional[Dict[int, object]] = None,
    ) -> None:
        self._job = job
        self.job_key = uuid.uuid4().hex
        count = len(job.specs)
        addresses: List[Optional[str]] = [
            placement.address_of(index) if placement is not None else None
            for index in range(count)
        ]
        self._processes: List = []
        #: Seat index → spawned local worker process (empty entries for
        #: placement-named remote seats).  The chaos harness kills these.
        self.seat_processes: Dict[int, object] = {}
        self.connections: List[socket.socket] = []
        self._files: List = []
        # One reader thread per connection owns all inbound frames: periodic
        # metrics frames are filed as they arrive, and the final result (or
        # EOF) parks in _result_frames / sets the matching event.  finish()
        # and connection_failure() consult those instead of reading sockets.
        self._readers: List[threading.Thread] = []
        self._result_frames: List[Optional[tuple]] = [None] * count
        self._result_events: List[threading.Event] = [
            threading.Event() for _ in range(count)
        ]
        self._live_metrics: Dict[int, dict] = {}
        self._live_spans: Dict[int, list] = {}
        self._clock_offsets: Dict[int, float] = {}
        #: Seat index → latest checkpoint payload frame received.
        self._latest_checkpoints: Dict[int, object] = {}
        try:
            context = preferred_context()
            ready_queue = context.Queue()
            seats = [index for index, address in enumerate(addresses) if address is None]
            for seat in seats:
                process = context.Process(
                    target=_local_worker_main,
                    args=(ready_queue, seat),
                    name=f"runtime-socket-worker-{seat}",
                    daemon=True,
                )
                process.start()
                self._processes.append(process)
                self.seat_processes[seat] = process
            for _ in seats:
                seat, port = ready_queue.get(timeout=_SPAWN_WAIT_SECONDS)
                addresses[seat] = f"127.0.0.1:{port}"
            self.addresses = tuple(addresses)
            for index, address in enumerate(self.addresses):
                connection = socket.create_connection(
                    parse_host_port(address), timeout=_SPAWN_WAIT_SECONDS
                )
                connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self.connections.append(connection)
                self._files.append(connection.makefile("rb"))
            for index, spec in enumerate(job.specs):
                send_frame(
                    self.connections[index],
                    (
                        "job",
                        self.job_key,
                        spec,
                        self.addresses,
                        job.micro_batch_size,
                        job.buffer_capacity,
                        job.metrics,
                        job.metrics_interval,
                        job.trace,
                        job.checkpoint_interval,
                        restores.get(index) if restores else None,
                    ),
                )
            for index in range(count):
                reader = threading.Thread(
                    target=self._read_frames,
                    args=(index,),
                    name=f"runtime-socket-reader-{index}",
                    daemon=True,
                )
                reader.start()
                self._readers.append(reader)
        except Exception as error:
            self._release()
            raise WorkerStartError(f"cannot start socket workers: {error}") from error
        self._emitter = BatchingEmitter(_DriverSocketPutter(self), job.micro_batch_size)

    def _read_frames(self, index: int) -> None:
        """Reader-thread body: drain one connection until result or EOF."""
        file = self._files[index]
        result: Optional[tuple] = None
        try:
            while True:
                frame = recv_frame(file)
                if frame is None:
                    break
                if frame[0] == "metrics":
                    self._live_metrics[index] = frame[3]
                    continue
                if frame[0] == "anchor":
                    # Handshake (wall, perf) pair — first frame a worker
                    # sends, so the offset is known before any span arrives.
                    self._clock_offsets[index] = estimate_clock_offset(frame[3])
                    continue
                if frame[0] == "spans":
                    self._live_spans.setdefault(index, []).extend(
                        shift_spans(frame[3], self._clock_offsets.get(index, 0.0))
                    )
                    continue
                if frame[0] == "checkpoint":
                    # Later frames carry strictly later state; keep the last.
                    self._latest_checkpoints[index] = frame[3]
                    continue
                result = frame
                break
        except (OSError, ValueError, EOFError):  # pragma: no cover - torn read
            pass
        finally:
            self._result_frames[index] = result
            self._result_events[index].set()

    def metrics(self) -> List[dict]:
        return [self._live_metrics[index] for index in sorted(self._live_metrics)]

    def trace_spans(self) -> List[dict]:
        return [
            span
            for index in sorted(self._live_spans)
            for span in self._live_spans[index]
        ]

    def _flight_dump(self, index: int) -> str:
        """Render the dead/stuck worker's last-known telemetry, if any."""
        if not (self._job.trace or self._job.metrics):
            return ""
        from ..obs.recorder import render_flight_dump

        return render_flight_dump(
            f"worker {index} (job {self.job_key})",
            self._live_spans.get(index, []),
            self._live_metrics.get(index),
        )

    def connection_failure(self, target: int, error: OSError) -> RuntimeError:
        """A send broke: wait briefly for the worker's marshalled failure.

        Returns a :class:`repro.recovery.types.SeatFailure` (a
        ``RuntimeError``) naming the seat and its placement address, so the
        recovering driver can tell *which* seat to re-execute and operators
        can tell *which* host to look at.
        """
        self._result_events[target].wait(timeout=2.0)
        frame = self._result_frames[target]
        address = self.addresses[target]
        if frame is not None and frame[0] == "error":
            return SeatFailure(
                target,
                address,
                "worker_error",
                f"worker {target} ({address}) failed:\n{frame[3]}",
            )
        return SeatFailure(
            target,
            address,
            "connection_failure",
            f"worker {target} ({address}) connection failed: {error}",
        )

    def _check_seat_alive(self, target: int) -> None:
        """Raise eagerly when the reader already saw the seat die.

        Send-side failure detection alone is unreliable: a SIGKILLed local
        worker leaves its socket orphaned in FIN-WAIT-2, where the kernel
        keeps ACKing the driver's frames (until the buffer fills or the
        FIN timeout strikes) even though nothing will ever read them.  The
        reader thread, however, observes the FIN immediately — so every
        send first consults its verdict and fails the seat while recovery
        can still replay a short suffix.
        """
        if not self._result_events[target].is_set():
            return
        frame = self._result_frames[target]
        if frame is not None and frame[0] != "error":
            return  # settled normally; finish_seat() consumes the result
        address = self.addresses[target]
        if frame is None:
            reason = f"worker {target} ({address}) closed its connection mid-run"
            dump = self._flight_dump(target)
            if dump:
                reason = f"{reason}\n{dump}"
            raise SeatFailure(target, address, "connection_lost", reason)
        raise SeatFailure(
            target,
            address,
            "worker_error",
            f"worker {frame[2]} ({address}) failed:\n{frame[3]}",
        )

    def send(self, target: int, channel: Hashable, tagged: Tagged) -> None:
        self._check_seat_alive(target)
        self._emitter.send(target, channel, tagged)

    def done(self, target: int) -> None:
        self._check_seat_alive(target)
        self._emitter.done(target)

    def latest_checkpoint(self, index: int):
        """The last checkpoint payload seat ``index`` shipped (``None`` when
        it never checkpointed or checkpointing was off)."""
        return self._latest_checkpoints.get(index)

    def finish_seat(self, index: int) -> WorkerReport:
        """Wait for one seat's result frame; its report, clock-normalized.

        Raises :class:`repro.recovery.types.SeatFailure` — carrying the
        seat index, its placement address and a cause tag — when the seat
        closed its connection without a result (a killed worker), stayed
        silent past ``result_timeout``, or marshalled a failure.  The
        flight-recorder dump of an instrumented run is appended to the
        message.
        """
        timeout = self._job.result_timeout
        arrived = self._result_events[index].wait(timeout)
        frame = self._result_frames[index] if arrived else None
        address = self.addresses[index]
        if frame is None:
            # A seat died (EOF before its result) or went silent past
            # the result timeout: dump its flight recorder — the last
            # spans and counters it shipped — before failing the seat.
            if arrived:
                cause = "connection_lost"
                reason = (
                    f"worker {index} ({address}) closed its connection "
                    "without a result"
                )
            else:
                cause = "timeout"
                reason = (
                    f"worker {index} ({address}) produced no result "
                    f"within {timeout}s"
                )
            dump = self._flight_dump(index)
            if dump:
                _LOGGER.error("%s\n%s", reason, dump)
                reason = f"{reason}\n{dump}"
            raise SeatFailure(index, address, cause, reason)
        if frame[0] == "error":
            raise SeatFailure(
                index,
                address,
                "worker_error",
                f"worker {frame[2]} ({address}) failed:\n{frame[3]}",
            )
        report = decode_report(frame[3])
        offset = self._clock_offsets.get(index)
        if offset is not None:
            # Normalize the worker's perf-counter readings onto the
            # driver clock: span timestamps shift directly; recorded
            # emit latencies were measured against driver-stamped
            # ingest clocks, so the same offset corrects them.
            report.clock_offset = offset
            if report.spans:
                report.spans = shift_spans(report.spans, offset)
            if offset and report.emit_latencies:
                report.emit_latencies = [
                    latency + offset for latency in report.emit_latencies
                ]
        return report

    def finish(self) -> List[WorkerReport]:
        self._emitter.flush()
        reports = [
            self.finish_seat(index) for index in range(len(self._job.specs))
        ]
        self._release()
        return reports

    def release(self) -> None:
        """Close every connection and reap local workers.

        The recovering driver finishes seats one by one across several
        sessions, so it releases each session explicitly instead of going
        through :meth:`finish`.
        """
        self._release()

    def _release(self) -> None:
        for connection in self.connections:
            # shutdown() delivers EOF to a reader thread blocked in recv
            # (close() alone keeps the fd alive while the makefile holds a
            # reference); close() then releases the driver's half.
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        for reader in self._readers:
            reader.join(timeout=5.0)
        self._readers = []
        for process in self._processes:
            process.join(timeout=5.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
        self.connections = []
        self._processes = []

    def _cleanup(self, failed: bool) -> None:
        self._release()


class SocketTransport(Transport):
    name = "sockets"

    def start(self, job: RuntimeJob, placement: Optional[Placement] = None) -> SocketSession:
        return SocketSession(job, placement)
