"""Channels: the bounded, watermark-aware seam between runtime workers.

Every transport connects producers to consumers through the same two
primitives:

* :class:`Channel` — a bounded, closable, thread-safe FIFO with micro-batch
  draining and multi-producer close bookkeeping.  ``put`` blocks once the
  channel is full, so a slow consumer transparently backpressures its
  producers (and, transitively, the sources) instead of letting queues grow
  without bound; ``take_batch`` drains up to a micro-batch of elements in one
  lock acquisition, amortising synchronisation the way micro-batching stream
  engines do.  A channel created with ``producers=N`` closes itself after the
  N-th :meth:`Channel.producer_done` call — the done-sentinel close protocol
  every backend shares.
* :class:`ChannelWatermarks` — the min-merge of per-channel watermarks
  feeding one operator input side, which is how the ``min over partitions``
  stage-watermark rule is enforced without cross-partition shared state.

The channel is deliberately not :class:`queue.Queue`: the batch drain, the
close protocol (producers signal completion; consumers drain the remainder
and then see ``None``) and the high-watermark statistic are all part of the
runtime's contract and easier to state explicitly than to bolt on.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Generic, Hashable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


class ChannelClosed(RuntimeError):
    """Raised when putting into a channel that has been closed."""


class Channel(Generic[T]):
    """A bounded, closable, thread-safe FIFO with micro-batch draining."""

    def __init__(self, capacity: int = 1024, producers: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("channel capacity must be positive")
        if producers <= 0:
            raise ValueError("channel producer count must be positive")
        self._capacity = capacity
        self._producers = producers
        self._items: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.high_watermark = 0
        self.total_put = 0
        self.put_blocks = 0
        self.total_batches = 0
        self.total_batch_elements = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, item: T) -> None:
        """Append one element; blocks while the channel is full (backpressure)."""
        with self._not_full:
            if self._closed:
                raise ChannelClosed("cannot put into a closed channel")
            if len(self._items) >= self._capacity:
                self.put_blocks += 1
                while len(self._items) >= self._capacity and not self._closed:
                    self._not_full.wait()
                if self._closed:
                    raise ChannelClosed("channel closed while waiting for space")
            self._items.append(item)
            self.total_put += 1
            if len(self._items) > self.high_watermark:
                self.high_watermark = len(self._items)
            self._not_empty.notify()

    def producer_done(self) -> None:
        """One producer will put no further elements.

        The channel closes once every producer (the count fixed at
        construction) has reported done — the multi-producer half of the
        done-sentinel close protocol.
        """
        with self._lock:
            self._producers -= 1
            if self._producers <= 0:
                self._close_locked()

    def close(self) -> None:
        """Close immediately, regardless of outstanding producers.

        Consumers continue draining buffered elements; once the channel is
        empty, :meth:`take_batch` returns ``None``.  Used by failure paths to
        unblock producers parked on a full channel nobody will drain.
        """
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        self._closed = True
        self._not_empty.notify_all()
        self._not_full.notify_all()

    def take_batch(self, max_size: int) -> Optional[List[T]]:
        """Remove and return up to ``max_size`` elements, in FIFO order.

        Blocks while the channel is empty and open.  Returns ``None`` exactly
        when the channel is closed *and* fully drained — the consumer's
        signal to finish up.
        """
        if max_size <= 0:
            raise ValueError("micro-batch size must be positive")
        with self._not_empty:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if not self._items:
                return None
            batch = [self._items.popleft() for _ in range(min(max_size, len(self._items)))]
            self.total_batches += 1
            self.total_batch_elements += len(batch)
            self._not_full.notify_all()
            return batch


class ChannelWatermarks:
    """Min-merge of the per-channel watermarks feeding one input side.

    A partitioned upstream stage reaches a consumer through one FIFO channel
    per partition; a source edge is a single channel.  The side's effective
    watermark — the stage *output* watermark, for a partitioned producer —
    is the minimum over all channels, so it only advances once **every**
    partition has advanced: exactly the ``min over partitions`` rule the
    derived-watermark contract requires.  Channels start at ``-inf``, so the
    merged value stays silent until every channel has reported.
    """

    __slots__ = ("_values", "_merged")

    def __init__(self, channels: Sequence[Hashable]) -> None:
        self._values: Dict[Hashable, float] = {
            channel: float("-inf") for channel in channels
        }
        self._merged = float("-inf")

    @property
    def merged(self) -> float:
        """The current min-over-channels watermark."""
        return self._merged

    def update(self, channel: Hashable, value: float) -> Optional[float]:
        """Record one channel's watermark; returns the new merged minimum
        when it advanced, ``None`` otherwise (per-channel regressions are
        ignored — watermarks are monotone promises)."""
        if value > self._values[channel]:
            self._values[channel] = value
            merged = min(self._values.values())
            if merged > self._merged:
                self._merged = merged
                return merged
        return None
