"""Fixed-layout binary wire codec for socket micro-batch frames.

The socket transport historically pickled every frame.  Control frames
(job dispatch, reports, metrics, checkpoints) are rare and structurally
rich — pickle is the right tool there and they keep using it.  Element
micro-batches are the opposite: thousands per run, each a list of
near-identical compact codes (:mod:`repro.parallel.serialize` shapes).
Under the columnar layout those batches ship as *column blocks* instead:

``encode_batch_frame`` lays a batch out as a fixed header plus dtype-tagged
numeric columns — one u8/i64/f64 buffer per field across all rows (element
tag, side, revision kind, flags, sequence, interval start/end, probability,
ingest clock) — followed by a variable-length section for the few
genuinely dynamic values (channel ids, facts, lineage codes, watermark
values, trace contexts).  ``decode_batch_frame`` reads the numeric columns straight out
of the frame with ``numpy.frombuffer`` (zero-copy views over the received
bytes; a pure-``struct`` fallback keeps numpy optional) and rebuilds the
exact ``("e", ...)`` / ``("r", ...)`` / ``("w", ...)`` code tuples the
pickle path would have carried — the codec is a bijection on the element
codes, property-tested round-trip.

Every read is bounds-checked: a truncated or corrupt frame raises
:class:`WireFormatError` with a reason, never ``frombuffer`` garbage.

Frames self-identify: byte 0 is :data:`WIRE_MAGIC` (``0x43``), which can
never open a pickle stream (protocol ≥ 2 pickles start ``0x80``; protocol
0/1 opcodes for the tuple payloads sent here start ``(`` or ``]``), so
:func:`decode_payload` dispatches per frame and binary and pickled traffic
coexist on one connection — an object-layout peer and a columnar peer
interoperate.

Not every batch is binary-encodable (an exotic fact value, an int-typed
clock).  ``encode_batch_frame`` raises :class:`WireFormatError` on the
first such row and the sender falls back to pickling that batch — the
fast path stays exact, the slow path stays universal.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Tuple

try:  # pragma: no cover - exercised by the numpy-less CI leg
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-less CI leg
    _np = None

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireFormatError",
    "decode_batch_frame",
    "decode_payload",
    "encode_batch_frame",
    "is_wire_frame",
]

#: First byte of every binary frame.  Pickle streams can never start with
#: it: protocol ≥ 2 begins with 0x80, and the protocol 0/1 opcodes that can
#: open the tuple payloads this transport sends are ``(`` and ``]``.
WIRE_MAGIC = 0x43  # 'C' for column

#: Bumped whenever the frame layout changes; decoding rejects mismatches.
WIRE_VERSION = 1

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1

#: Element-tag byte per code-tuple tag.
_ETAG_WATERMARK = 0
_ETAG_EVENT = 1
_ETAG_REVISION = 2

#: Flag bits of the per-row flags column.
_FLAG_TRACE = 1
_FLAG_CLOCK = 2
_FLAG_PROB = 4
_FLAG_PROVISIONAL = 8

#: Revision-kind column value for non-revision rows.
_NO_KIND = 255

#: dtype tags of the numeric column blocks.
_DTYPE_U8 = 1
_DTYPE_I64 = 2
_DTYPE_F64 = 3

_HEADER = struct.Struct("!BBHI")  # magic, version, job-key length, row count
_U32 = struct.Struct("!I")
_BLOCK = struct.Struct("!BI")  # dtype tag, payload byte length
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")


class WireFormatError(ValueError):
    """A frame could not be binary-encoded, or failed to decode cleanly."""


# --------------------------------------------------------------------------- #
# generic value codec (variable-length section)
# --------------------------------------------------------------------------- #
def _memo_key(value: Any):
    """A type- and bit-exact hashable key for the per-frame memo.

    Plain equality is too coarse for a codec that must round-trip exactly:
    ``("a", 1) == ("a", True)`` and ``0.0 == -0.0``, but decoding one as
    the other would corrupt the stream.  Keys therefore tag every leaf
    with its type and use the f64 bit pattern for floats.  Raises
    ``TypeError`` for unhashable contents (tuples holding lists/dicts),
    which simply exempts that value from memoization.
    """
    kind = type(value)
    if kind is str:
        return ("s", value)
    if kind is tuple:
        return ("t",) + tuple(_memo_key(item) for item in value)
    if kind is bool:
        return ("b", value)
    if kind is int:
        return ("i", value)
    if kind is float:
        return ("f", _F64.pack(value))
    if kind is bytes:
        return ("y", value)
    if value is None:
        return ("n",)
    raise TypeError(f"not memoizable: {kind.__name__}")


def _pack_value(value: Any, out: List[bytes], memo: dict) -> None:
    """Append the tagged encoding of one dynamic value.

    Covers exactly the types that appear in element codes: ``None``, bools,
    ints, floats, strings, bytes, and tuples/lists/dicts of the same.
    Anything else raises :class:`WireFormatError` so the sender can fall
    back to pickle for the whole batch.

    Strings and tuples are memoized per frame: repeats (channel ids every
    row, the few distinct join-key strings of a batch) encode as a 5-byte
    back-reference (``R`` + index) instead of their full bytes, mirroring
    pickle's memo.  The decoder rebuilds the same memo in the same order.
    """
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "little", signed=True)
            out.append(b"I")
            out.append(_U32.pack(len(raw)))
            out.append(raw)
    elif type(value) is float:
        out.append(b"f")
        out.append(_F64.pack(value))
    elif type(value) is str:
        index = memo.get(("s", value))
        if index is not None:
            out.append(b"R")
            out.append(_U32.pack(index))
            return
        raw = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
        memo[("s", value)] = len(memo)
    elif type(value) is bytes:
        out.append(b"y")
        out.append(_U32.pack(len(value)))
        out.append(value)
    elif type(value) is tuple:
        try:
            key = _memo_key(value)
        except TypeError:
            key = None
        if key is not None:
            index = memo.get(key)
            if index is not None:
                out.append(b"R")
                out.append(_U32.pack(index))
                return
        out.append(b"t")
        out.append(_U32.pack(len(value)))
        for item in value:
            _pack_value(item, out, memo)
        if key is not None:
            memo[key] = len(memo)
    elif type(value) is list:
        out.append(b"l")
        out.append(_U32.pack(len(value)))
        for item in value:
            _pack_value(item, out, memo)
    elif type(value) is dict:
        out.append(b"d")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _pack_value(key, out, memo)
            _pack_value(item, out, memo)
    else:
        raise WireFormatError(
            f"value of type {type(value).__name__} is not binary-encodable"
        )


class _Reader:
    """Bounds-checked cursor over a received frame."""

    __slots__ = ("data", "offset", "end")

    def __init__(self, data: bytes, offset: int, end: int) -> None:
        self.data = data
        self.offset = offset
        self.end = end

    def take(self, count: int) -> bytes:
        if count < 0 or self.offset + count > self.end:
            raise WireFormatError(
                f"frame truncated: need {count} bytes at offset {self.offset}, "
                f"have {self.end - self.offset}"
            )
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def _unpack_value(reader: _Reader, memo: list) -> Any:
    tag = reader.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(reader.take(8))[0]
    if tag == b"I":
        return int.from_bytes(reader.take(reader.u32()), "little", signed=True)
    if tag == b"f":
        return _F64.unpack(reader.take(8))[0]
    if tag == b"s":
        raw = reader.take(reader.u32())
        try:
            value = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireFormatError(f"corrupt utf-8 string in frame: {error}") from None
        memo.append(value)
        return value
    if tag == b"R":
        index = reader.u32()
        if index >= len(memo):
            raise WireFormatError(
                f"memo back-reference {index} exceeds memo of {len(memo)} entries"
            )
        return memo[index]
    if tag == b"y":
        return reader.take(reader.u32())
    if tag == b"t":
        value = tuple(_unpack_value(reader, memo) for _ in range(reader.u32()))
        # Mirror the encoder exactly: only memo-keyable (= hashable) tuples
        # were added, in post-order, so indices line up frame-wide.
        try:
            hash(value)
        except TypeError:
            return value
        memo.append(value)
        return value
    if tag == b"l":
        return [_unpack_value(reader, memo) for _ in range(reader.u32())]
    if tag == b"d":
        count = reader.u32()
        result = {}
        for _ in range(count):
            key = _unpack_value(reader, memo)
            result[key] = _unpack_value(reader, memo)
        return result
    raise WireFormatError(f"unknown value tag {tag!r} in frame")


# --------------------------------------------------------------------------- #
# numeric column blocks
# --------------------------------------------------------------------------- #
def _pack_column(dtype_tag: int, values: list, out: List[bytes]) -> None:
    if dtype_tag == _DTYPE_U8:
        payload = bytes(values)
    elif _np is not None:
        numpy_dtype = "<i8" if dtype_tag == _DTYPE_I64 else "<f8"
        payload = _np.asarray(values, dtype=numpy_dtype).tobytes()
    elif dtype_tag == _DTYPE_I64:
        payload = struct.pack(f"<{len(values)}q", *values)
    else:
        payload = struct.pack(f"<{len(values)}d", *values)
    out.append(_BLOCK.pack(dtype_tag, len(payload)))
    out.append(payload)


def _unpack_column(reader: _Reader, expected_tag: int, rows: int):
    """One numeric column as a sequence (numpy view when numpy is present)."""
    header = reader.take(_BLOCK.size)
    dtype_tag, nbytes = _BLOCK.unpack(header)
    if dtype_tag != expected_tag:
        raise WireFormatError(
            f"column dtype tag {dtype_tag} does not match expected {expected_tag}"
        )
    width = 1 if dtype_tag == _DTYPE_U8 else 8
    if nbytes != rows * width:
        raise WireFormatError(
            f"column of {rows} rows should be {rows * width} bytes, frame says {nbytes}"
        )
    payload = reader.take(nbytes)
    if dtype_tag == _DTYPE_U8:
        return payload
    if _np is not None:
        # Zero-copy: a read-only view straight over the received buffer.
        numpy_dtype = "<i8" if dtype_tag == _DTYPE_I64 else "<f8"
        return _np.frombuffer(payload, dtype=numpy_dtype)
    if dtype_tag == _DTYPE_I64:
        return struct.unpack(f"<{rows}q", payload)
    return struct.unpack(f"<{rows}d", payload)


# --------------------------------------------------------------------------- #
# batch frames
# --------------------------------------------------------------------------- #
def encode_batch_frame(job_key: str, entries: list) -> bytes:
    """Encode one micro-batch of element codes as a binary column frame.

    ``entries`` are ``(channel, code)`` pairs as produced by
    :class:`repro.runtime.transport.BatchingEmitter`: the channel is the
    receiver's watermark-merge id (``"src"`` or a small primitive tuple),
    the code a :mod:`repro.parallel.serialize` tuple — ``("w", side,
    value)``, ``("e", side, sequence, tuple_code, clock)`` or ``("r", side,
    kind, provisional, tuple_code, clock)``, each optionally with one
    trailing trace-context field.  Raises :class:`WireFormatError` when any
    entry falls outside the fixed layout (the caller then pickles the batch
    instead).
    """
    rows = len(entries)
    etags: List[int] = []
    sides: List[int] = []
    kinds: List[int] = []
    flags: List[int] = []
    sequences: List[int] = []
    starts: List[int] = []
    ends: List[int] = []
    probs: List[float] = []
    clocks: List[float] = []
    dynamic: List[bytes] = []
    memo: dict = {}
    for pair in entries:
        if type(pair) is not tuple or len(pair) != 2:
            raise WireFormatError(f"batch entry {pair!r} is not a (channel, code) pair")
        channel, entry = pair
        _pack_value(channel, dynamic, memo)
        if type(entry) is not tuple or not entry:
            raise WireFormatError(f"batch entry {entry!r} is not an element code")
        tag = entry[0]
        if tag == "w":
            if len(entry) != 3:
                raise WireFormatError(f"watermark code of length {len(entry)}")
            _tag, side, value = entry
            etags.append(_ETAG_WATERMARK)
            sides.append(_checked_side(side))
            kinds.append(_NO_KIND)
            flags.append(0)
            sequences.append(0)
            starts.append(0)
            ends.append(0)
            probs.append(0.0)
            clocks.append(0.0)
            # The generic codec preserves the value's exact type: integer
            # watermarks must not come back as floats.
            _pack_value(value, dynamic, memo)
            continue
        if tag == "e":
            if len(entry) not in (5, 6):
                raise WireFormatError(f"event code of length {len(entry)}")
            _tag, side, sequence, tuple_code, clock = entry[:5]
            trace = entry[5] if len(entry) == 6 else None
            etag, kind, provisional = _ETAG_EVENT, _NO_KIND, False
        elif tag == "r":
            if len(entry) not in (6, 7):
                raise WireFormatError(f"revision code of length {len(entry)}")
            _tag, side, kind, provisional, tuple_code, clock = entry[:6]
            trace = entry[6] if len(entry) == 7 else None
            etag = _ETAG_REVISION
            if type(kind) is not int or not 0 <= kind < _NO_KIND:
                raise WireFormatError(f"revision kind code {kind!r} out of range")
            if type(provisional) is not bool:
                raise WireFormatError(f"provisional flag {provisional!r} is not a bool")
            sequence = 0
        else:
            raise WireFormatError(f"unknown element code tag {tag!r}")
        if type(tuple_code) is not tuple or len(tuple_code) != 5:
            raise WireFormatError(f"tuple code {tuple_code!r} is not a 5-tuple")
        fact, lineage, start, end, probability = tuple_code
        if type(sequence) is not int or not _I64_MIN <= sequence <= _I64_MAX:
            raise WireFormatError(f"sequence {sequence!r} does not fit an i64 column")
        if type(start) is not int or not _I64_MIN <= start <= _I64_MAX:
            raise WireFormatError(f"interval start {start!r} does not fit an i64 column")
        if type(end) is not int or not _I64_MIN <= end <= _I64_MAX:
            raise WireFormatError(f"interval end {end!r} does not fit an i64 column")
        row_flags = 0
        if probability is not None:
            if type(probability) is not float:
                raise WireFormatError(
                    f"probability {probability!r} does not fit an f64 column"
                )
            row_flags |= _FLAG_PROB
        if clock is not None:
            if type(clock) is not float:
                raise WireFormatError(f"clock {clock!r} does not fit an f64 column")
            row_flags |= _FLAG_CLOCK
        if trace is not None:
            row_flags |= _FLAG_TRACE
        if tag == "r" and provisional:
            row_flags |= _FLAG_PROVISIONAL
        etags.append(etag)
        sides.append(_checked_side(side))
        kinds.append(kind)
        flags.append(row_flags)
        sequences.append(sequence)
        starts.append(start)
        ends.append(end)
        probs.append(probability if probability is not None else 0.0)
        clocks.append(clock if clock is not None else 0.0)
        _pack_value(fact, dynamic, memo)
        _pack_value(lineage, dynamic, memo)
        if trace is not None:
            _pack_value(trace, dynamic, memo)
    key_raw = job_key.encode("utf-8")
    if len(key_raw) > 0xFFFF:
        raise WireFormatError("job key too long for a wire frame")
    parts: List[bytes] = [_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, len(key_raw), rows)]
    parts.append(key_raw)
    _pack_column(_DTYPE_U8, etags, parts)
    _pack_column(_DTYPE_U8, sides, parts)
    _pack_column(_DTYPE_U8, kinds, parts)
    _pack_column(_DTYPE_U8, flags, parts)
    _pack_column(_DTYPE_I64, sequences, parts)
    _pack_column(_DTYPE_I64, starts, parts)
    _pack_column(_DTYPE_I64, ends, parts)
    _pack_column(_DTYPE_F64, probs, parts)
    _pack_column(_DTYPE_F64, clocks, parts)
    variable = b"".join(dynamic)
    parts.append(_U32.pack(len(variable)))
    parts.append(variable)
    return b"".join(parts)


def _checked_side(side: Any) -> int:
    if side not in (0, 1):
        raise WireFormatError(f"side code {side!r} is not 0 or 1")
    return side


def is_wire_frame(data: bytes) -> bool:
    """Whether a received payload is a binary column frame (vs a pickle)."""
    return len(data) > 0 and data[0] == WIRE_MAGIC


def decode_batch_frame(data: bytes) -> Tuple[str, list]:
    """Decode one binary column frame back into ``(job_key, entries)``.

    The returned entries are exactly the code tuples that went in —
    byte-equal round trip.  Raises :class:`WireFormatError` on truncation,
    version mismatch, or any malformed field.
    """
    if len(data) < _HEADER.size:
        raise WireFormatError(
            f"frame of {len(data)} bytes is shorter than the {_HEADER.size}-byte header"
        )
    magic, version, key_length, rows = _HEADER.unpack_from(data)
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad frame magic 0x{magic:02x}")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"wire version {version} does not match WIRE_VERSION {WIRE_VERSION}"
        )
    reader = _Reader(data, _HEADER.size, len(data))
    try:
        job_key = reader.take(key_length).decode("utf-8")
    except UnicodeDecodeError as error:
        raise WireFormatError(f"corrupt job key: {error}") from None
    etags = _unpack_column(reader, _DTYPE_U8, rows)
    sides = _unpack_column(reader, _DTYPE_U8, rows)
    kinds = _unpack_column(reader, _DTYPE_U8, rows)
    flags = _unpack_column(reader, _DTYPE_U8, rows)
    sequences = _unpack_column(reader, _DTYPE_I64, rows)
    starts = _unpack_column(reader, _DTYPE_I64, rows)
    ends = _unpack_column(reader, _DTYPE_I64, rows)
    probs = _unpack_column(reader, _DTYPE_F64, rows)
    clocks = _unpack_column(reader, _DTYPE_F64, rows)
    variable_length = reader.u32()
    if reader.offset + variable_length != reader.end:
        raise WireFormatError(
            f"variable section says {variable_length} bytes, "
            f"frame has {reader.end - reader.offset}"
        )
    kind_count = _revision_kind_count()
    entries: list = []
    memo: list = []
    for row in range(rows):
        channel = _unpack_value(reader, memo)
        etag = etags[row]
        side = sides[row]
        if side not in (0, 1):
            raise WireFormatError(f"row {row}: side byte {side} is not 0 or 1")
        if etag == _ETAG_WATERMARK:
            entries.append((channel, ("w", side, _unpack_value(reader, memo))))
            continue
        if etag not in (_ETAG_EVENT, _ETAG_REVISION):
            raise WireFormatError(f"row {row}: unknown element tag byte {etag}")
        row_flags = flags[row]
        fact = _unpack_value(reader, memo)
        lineage = _unpack_value(reader, memo)
        trace = _unpack_value(reader, memo) if row_flags & _FLAG_TRACE else None
        probability = float(probs[row]) if row_flags & _FLAG_PROB else None
        clock = float(clocks[row]) if row_flags & _FLAG_CLOCK else None
        tuple_code = (fact, lineage, int(starts[row]), int(ends[row]), probability)
        if etag == _ETAG_EVENT:
            code = ("e", side, int(sequences[row]), tuple_code, clock)
        else:
            kind = kinds[row]
            if kind >= kind_count:
                raise WireFormatError(
                    f"row {row}: revision kind byte {kind} out of range "
                    f"(engine has {kind_count} kinds)"
                )
            code = (
                "r",
                side,
                int(kind),
                bool(row_flags & _FLAG_PROVISIONAL),
                tuple_code,
                clock,
            )
        entries.append((channel, code if trace is None else code + (trace,)))
    if reader.offset != reader.end:
        raise WireFormatError(
            f"{reader.end - reader.offset} trailing bytes after the last row"
        )
    return job_key, entries


def _revision_kind_count() -> int:
    # Imported lazily: repro.parallel imports runtime symbols during
    # package init, so a module-level import here could cycle.
    from ..parallel.serialize import revision_kind_codes

    return revision_kind_codes()


def decode_payload(data: bytes) -> Any:
    """Decode one received socket payload, binary or pickled.

    Binary column frames come back as the same ``("batch", job_key,
    entries)`` message the pickle path carries, so the receiving loop is
    codec-agnostic.
    """
    if is_wire_frame(data):
        job_key, entries = decode_batch_frame(data)
        return ("batch", job_key, entries)
    return pickle.loads(data)
