"""Transports: how runtime workers are placed and wired together.

A *transport* turns a :class:`RuntimeJob` — worker specs plus channel
capacity / micro-batch knobs — into a live :class:`TransportSession` the
driver routes source elements into.  Four transports share the one worker
loop of :mod:`repro.runtime.worker`:

* ``inline`` — every worker lives in the caller's thread; delivery is a
  synchronous call, so elements flow depth-first through the topology (the
  fast path for small inputs, and the reference for determinism tests);
* ``threads`` — one thread per worker, connected by bounded
  :class:`~repro.runtime.channel.Channel` inboxes (cheap, but the GIL caps
  CPU-bound lineage work at one core);
* ``processes`` — one forked OS process per worker over bounded
  ``multiprocessing`` queues, elements crossing in the compact codecs of
  :mod:`repro.parallel.serialize` (true multi-core speedup);
* ``sockets`` — one worker per TCP endpoint (driver-spawned locally, or a
  remote ``python -m repro.runtime.worker --listen`` joined through a
  :class:`~repro.runtime.placement.Placement`): the same codecs in
  length-prefixed frames, the first distributed backend
  (:mod:`repro.runtime.sockets`).

Every session exposes the identical driver contract — ``send(worker,
channel, element)``, ``done(worker)`` once per producer edge, ``finish()``
for the ordered :class:`~repro.runtime.worker.WorkerReport` list — so the
stream, parallel and dataflow subsystems each keep exactly one router loop
and inherit all four backends from it.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import traceback
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from ..obs.metrics import DEFAULT_METRICS_INTERVAL
from ..stream.elements import Tagged
from .channel import Channel, ChannelClosed
from .placement import Placement
from .worker import Worker, WorkerReport, decode_report, encode_report, run_worker

#: Poll interval (seconds) for queue operations that must watch worker
#: liveness.  Slow-but-alive workers are waited on indefinitely; only a dead
#: worker aborts the run.
_POLL_INTERVAL = 1.0


class WorkerStartError(RuntimeError):
    """Transport workers could not be started (sandbox, unreachable host).

    Raised strictly *before* any input element is consumed, so callers can
    fall back to another transport over the same untouched element iterator
    — queries degrade to the thread transport with a warning.
    """


def preferred_context() -> multiprocessing.context.BaseContext:
    """The cheapest usable multiprocessing context (fork, else spawn)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork missing on this platform
        return multiprocessing.get_context("spawn")


def available_cpus() -> int:
    """Best-effort CPU count (1 when undeterminable)."""
    try:
        return multiprocessing.cpu_count()
    except NotImplementedError:  # pragma: no cover - exotic platforms
        return 1


@dataclass(frozen=True)
class RuntimeJob:
    """Everything a transport needs to wire one topology of workers."""

    specs: tuple
    micro_batch_size: int = 64
    buffer_capacity: int = 1024
    #: Enable per-worker metrics registries (see :mod:`repro.obs`): workers
    #: count flow/loop metrics and piggyback periodic snapshots to the
    #: driver.  Off by default — the uninstrumented loop is the fast path.
    metrics: bool = False
    #: Seconds between piggybacked snapshots on queued transports (also the
    #: trace-span flush cadence).
    metrics_interval: float = DEFAULT_METRICS_INTERVAL
    #: Enable per-worker tracers (see :mod:`repro.obs.trace`): sampled
    #: elements carry a trace context and workers record spans into bounded
    #: flight-recorder rings.  Off by default, same discipline as metrics.
    trace: bool = False
    #: Socket transport only: seconds to wait for each worker's result frame
    #: before declaring the seat lost (``None`` waits forever, the
    #: historical behaviour).  A timeout triggers a flight-recorder dump.
    result_timeout: Optional[float] = None
    #: Socket transport only: seconds between worker state checkpoints
    #: (window-maintainer snapshots shipped to the driver as checkpoint
    #: frames).  ``0.0`` checkpoints at every micro-batch boundary;
    #: ``None`` (default) disables checkpointing — recovery, when enabled,
    #: then replays the failed shard from zero.
    checkpoint_interval: Optional[float] = None

    @property
    def queue_batches(self) -> int:
        """Queue capacity in micro-batches: the element budget a bounded
        in-process :class:`Channel` of ``buffer_capacity`` provides."""
        return max(2, self.buffer_capacity // max(1, self.micro_batch_size))


def _job_registries(job: RuntimeJob) -> List:
    """One metrics registry per spec when the job is instrumented."""
    if not job.metrics:
        return [None] * len(job.specs)
    from ..obs.metrics import registry_for_spec

    return [registry_for_spec(spec) for spec in job.specs]


def _job_tracers(job: RuntimeJob) -> List:
    """One flight-recorder tracer per spec when the job is traced."""
    if not job.trace:
        return [None] * len(job.specs)
    from ..obs.trace import tracer_for_spec

    return [tracer_for_spec(spec) for spec in job.specs]


class TransportSession:
    """One live run: drivers route in, workers report back.

    Context manager: ``__exit__`` releases every resource (threads joined,
    processes terminated, sockets closed) even when routing failed midway.
    """

    #: Transport name recorded in results (the backend that actually ran).
    name: str = ""
    #: Whether the driver should stamp ingest clocks (queued transports
    #: include queueing time in emit latency; inline stamps at processing).
    stamps_ingest: bool = True

    def send(self, target: int, channel: Hashable, tagged: Tagged) -> None:
        raise NotImplementedError

    def done(self, target: int) -> None:
        raise NotImplementedError

    def finish(self) -> List[WorkerReport]:
        raise NotImplementedError

    def metrics(self) -> List[dict]:
        """Most recent per-worker metrics snapshots (live, mid-run).

        Empty unless the job ran with ``metrics=True``; the final
        authoritative snapshots travel in the worker reports.
        """
        return []

    def trace_spans(self) -> List[dict]:
        """Spans shipped so far (live, mid-run), all workers flattened.

        Empty unless the job ran with ``trace=True``; the full rings
        travel in the worker reports, and span ids make the overlap safe
        to merge.  Remote sessions return spans already normalized onto
        the driver's clock.
        """
        return []

    @property
    def backpressure_blocks(self) -> int:
        return 0

    def __enter__(self) -> "TransportSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._cleanup(exc is not None)

    def _cleanup(self, failed: bool) -> None:  # pragma: no cover - overridden
        pass


class Transport:
    """Factory of sessions for one backend."""

    name: str = ""

    def start(self, job: RuntimeJob, placement: Optional[Placement] = None) -> TransportSession:
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# inline
# --------------------------------------------------------------------------- #
class _InlineEmitter:
    def __init__(self, session: "InlineSession") -> None:
        self._session = session

    def send(self, target: int, channel: Hashable, tagged: Tagged) -> None:
        self._session.send(target, channel, tagged)

    def done(self, target: int) -> None:
        self._session.done(target)

    def flush(self) -> None:
        pass


class InlineSession(TransportSession):
    """Synchronous depth-first delivery in the caller's thread.

    Each element pushed with :meth:`send` is fully processed — including
    every transitive downstream output — before the call returns, which is
    exactly the depth-first order the original inline executors used.
    """

    name = "inline"
    stamps_ingest = False

    def __init__(self, job: RuntimeJob) -> None:
        emitter = _InlineEmitter(self)
        registries = _job_registries(job)
        self._tracers = _job_tracers(job)
        self._workers = [
            Worker(spec, emitter, metrics=registry, tracer=tracer)
            for spec, registry, tracer in zip(job.specs, registries, self._tracers)
        ]
        self._remaining = [spec.producers for spec in job.specs]
        self._reports: List[Optional[WorkerReport]] = [None] * len(job.specs)

    def send(self, target: int, channel: Hashable, tagged: Tagged) -> None:
        self._workers[target].accept(channel, tagged)

    def done(self, target: int) -> None:
        self._remaining[target] -= 1
        if self._remaining[target] == 0 and self._reports[target] is None:
            self._reports[target] = self._workers[target].finish()

    def finish(self) -> List[WorkerReport]:
        # Sources close with CLOSED watermarks and the driver sends one done
        # per producer edge, so by now every worker has settled; close any
        # straggler defensively, in topological (index) order.
        for index, report in enumerate(self._reports):
            if report is None:
                self._reports[index] = self._workers[index].finish()
        return list(self._reports)

    def metrics(self) -> List[dict]:
        # Single-threaded: sampling the live operators directly is safe.
        snapshots = []
        for worker, report in zip(self._workers, self._reports):
            if report is not None and report.metrics is not None:
                snapshots.append(report.metrics)
            elif worker.metrics is not None:
                snapshot = worker.metrics_snapshot()
                if snapshot:
                    snapshots.append(snapshot)
        return snapshots

    def trace_spans(self) -> List[dict]:
        # Single-threaded: reading the live rings directly is safe.
        spans: List[dict] = []
        for tracer in self._tracers:
            if tracer is not None:
                spans.extend(tracer.dump())
        return spans


class InlineTransport(Transport):
    name = "inline"

    def start(self, job: RuntimeJob, placement: Optional[Placement] = None) -> InlineSession:
        return InlineSession(job)


# --------------------------------------------------------------------------- #
# threads
# --------------------------------------------------------------------------- #
class _ThreadEmitter:
    def __init__(self, inboxes: List[Channel]) -> None:
        self._inboxes = inboxes

    def send(self, target: int, channel: Hashable, tagged: Tagged) -> None:
        self._inboxes[target].put((channel, tagged))

    def done(self, target: int) -> None:
        self._inboxes[target].producer_done()

    def flush(self) -> None:
        pass


class ThreadSession(TransportSession):
    """One worker thread per spec over bounded channel inboxes."""

    name = "threads"

    def __init__(self, job: RuntimeJob) -> None:
        self._job = job
        self._inboxes: List[Channel] = [
            Channel(job.buffer_capacity, producers=spec.producers) for spec in job.specs
        ]
        self._emitter = _ThreadEmitter(self._inboxes)
        self._failures: List[BaseException] = []
        self._reports: List[Optional[WorkerReport]] = [None] * len(job.specs)
        self._registries = _job_registries(job)
        self._tracers = _job_tracers(job)
        self._live_metrics: List[Optional[dict]] = [None] * len(job.specs)
        self._live_spans: List[list] = [[] for _ in job.specs]
        self._threads = [
            threading.Thread(
                target=self._work,
                args=(index,),
                name=f"runtime-worker-{spec.index}",
            )
            for index, spec in enumerate(job.specs)
        ]
        for thread in self._threads:
            thread.start()

    def _work(self, index: int) -> None:
        spec = self._job.specs[index]
        dones_sent = False
        try:

            def sink(snapshot, index=index) -> None:
                self._live_metrics[index] = snapshot

            def trace_sink(spans, index=index) -> None:
                self._live_spans[index].extend(spans)

            report = run_worker(
                spec,
                self._inboxes[index],
                self._emitter,
                self._job.micro_batch_size,
                metrics=self._registries[index],
                metrics_sink=sink if self._job.metrics else None,
                metrics_interval=self._job.metrics_interval,
                tracer=self._tracers[index],
                trace_sink=trace_sink if self._job.trace else None,
            )
            dones_sent = True
            self._reports[index] = report
        except ChannelClosed:
            # A consumer died; the failure that closed its channel is the
            # one reported.
            pass
        except BaseException as error:  # noqa: BLE001 - reported to caller
            self._failures.append(error)
            self._inboxes[index].close()
        finally:
            if not dones_sent:
                # Downstream consumers must still learn this producer ended,
                # or the close cascade (and finish's joins) would hang.
                for first, parts, _side, _keys in spec.downstream:
                    for offset in range(parts):
                        self._inboxes[first + offset].producer_done()

    def send(self, target: int, channel: Hashable, tagged: Tagged) -> None:
        self._inboxes[target].put((channel, tagged))

    def done(self, target: int) -> None:
        self._inboxes[target].producer_done()

    def finish(self) -> List[WorkerReport]:
        for thread in self._threads:
            thread.join()
        if self._failures:
            raise self._failures[0]
        return [report for report in self._reports]  # all set once joined

    def metrics(self) -> List[dict]:
        snapshots = []
        for index, report in enumerate(self._reports):
            if report is not None and report.metrics is not None:
                snapshots.append(report.metrics)
            elif self._live_metrics[index] is not None:
                snapshots.append(self._live_metrics[index])
        return snapshots

    def trace_spans(self) -> List[dict]:
        # Lists are append-only from the worker side; a live read sees a
        # consistent prefix under the GIL.
        return [span for spans in self._live_spans for span in list(spans)]

    @property
    def backpressure_blocks(self) -> int:
        return sum(inbox.put_blocks for inbox in self._inboxes)

    def _cleanup(self, failed: bool) -> None:
        if failed:
            for inbox in self._inboxes:
                inbox.close()
        for thread in self._threads:
            thread.join(timeout=5.0)


class ThreadTransport(Transport):
    name = "threads"

    def start(self, job: RuntimeJob, placement: Optional[Placement] = None) -> ThreadSession:
        return ThreadSession(job)


# --------------------------------------------------------------------------- #
# processes
# --------------------------------------------------------------------------- #
class BatchingEmitter:
    """Encode + micro-batch downstream sends for a serialized boundary.

    ``putter`` is the transport-specific delivery half: ``put(target,
    batch)`` ships one encoded micro-batch, ``put_done(target)`` one done
    sentinel.  Watermarks count toward the micro-batch budget too: a
    partition receiving few events must still ship its broadcast watermarks
    (bounding pending growth and letting an otherwise-idle worker finalize
    windows).
    """

    def __init__(self, putter, micro_batch_size: int) -> None:
        from ..parallel.serialize import encode_revision_tagged

        self._encode = encode_revision_tagged
        self._putter = putter
        self._micro = micro_batch_size
        self._pending: Dict[int, list] = {}

    def send(self, target: int, channel: Hashable, tagged: Tagged) -> None:
        entries = self._pending.setdefault(target, [])
        entries.append((channel, self._encode(tagged)))
        if len(entries) >= self._micro:
            self._putter.put(target, self._pending.pop(target))

    def done(self, target: int) -> None:
        self.flush_target(target)
        self._putter.put_done(target)

    def flush_target(self, target: int) -> None:
        entries = self._pending.pop(target, None)
        if entries:
            self._putter.put(target, entries)

    def flush(self) -> None:
        for target in list(self._pending):
            self.flush_target(target)


class _QueueInbox:
    """Worker-side inbox over one multiprocessing queue.

    Messages are encoded micro-batches; ``None`` is one producer's done
    sentinel.  Batch size is set by the producer, so ``max_size`` is
    advisory here.
    """

    def __init__(self, queue, producers: int) -> None:
        from ..parallel.serialize import decode_revision_tagged

        self._decode = decode_revision_tagged
        self._queue = queue
        self._remaining = producers

    def take_batch(self, max_size: int) -> Optional[List[tuple]]:
        while self._remaining > 0:
            message = self._queue.get()
            if message is None:
                self._remaining -= 1
                continue
            return [(channel, self._decode(code)) for channel, code in message]
        return None


class _WorkerQueuePutter:
    """Worker-side puts into sibling queues, abortable on run failure."""

    def __init__(self, queues, abort) -> None:
        self._queues = queues
        self._abort = abort

    def _put(self, target: int, item) -> None:
        # A sibling worker may have died with a full queue nobody drains;
        # the parent sets `abort` when it learns of the failure, which is
        # this worker's signal to stop instead of blocking forever.
        while True:
            try:
                self._queues[target].put(item, timeout=_POLL_INTERVAL)
                return
            except queue_module.Full:
                if self._abort.is_set():
                    raise RuntimeError("run aborted while publishing downstream") from None

    def put(self, target: int, batch) -> None:
        self._put(target, batch)

    def put_done(self, target: int) -> None:
        self._put(target, None)


def _process_worker_main(
    spec, worker_queues, out_queue, micro_batch_size: int, abort,
    metrics: bool = False, metrics_interval: float = DEFAULT_METRICS_INTERVAL,
    trace: bool = False,
) -> None:
    """Process-transport worker entry point: run the loop, report once."""
    try:
        inbox = _QueueInbox(worker_queues[spec.index], spec.producers)
        emitter = BatchingEmitter(_WorkerQueuePutter(worker_queues, abort), micro_batch_size)
        registry = None
        sink = None
        tracer = None
        trace_sink = None
        if metrics:
            from ..obs.metrics import registry_for_spec

            registry = registry_for_spec(spec)

            def sink(snapshot) -> None:
                # Periodic snapshots ride the result queue with their own
                # message kind; the driver files them as live metrics.
                out_queue.put((spec.index, "metrics", snapshot))

        if trace:
            from ..obs.trace import tracer_for_spec

            tracer = tracer_for_spec(spec)

            def trace_sink(spans) -> None:
                # Periodic span flushes ride the result queue too.
                out_queue.put((spec.index, "spans", spans))

        report = run_worker(
            spec, inbox, emitter, micro_batch_size,
            metrics=registry, metrics_sink=sink, metrics_interval=metrics_interval,
            tracer=tracer, trace_sink=trace_sink,
        )
        out_queue.put((spec.index, "ok", encode_report(report)))
    except BaseException:  # noqa: BLE001 - marshalled to the driver
        out_queue.put((spec.index, "error", traceback.format_exc()))


class _DriverQueuePutter:
    """Driver-side puts that cannot hang on a dead worker's full queue."""

    def __init__(self, session: "ProcessSession") -> None:
        self._session = session

    def _put(self, target: int, item) -> None:
        session = self._session
        try:
            session.queues[target].put_nowait(item)
            return
        except queue_module.Full:
            session.blocks += 1
        while True:
            try:
                session.queues[target].put(item, timeout=_POLL_INTERVAL)
                return
            except queue_module.Full:
                # A failed sibling worker can make the whole pipeline stall
                # while this one stays alive: surface marshalled errors
                # instead of spinning on liveness alone.
                session.drain_results()
                if not session.workers[target].is_alive():
                    raise RuntimeError(
                        f"worker {target} died with a full input queue"
                    ) from None

    def put(self, target: int, batch) -> None:
        self._put(target, batch)

    def put_done(self, target: int) -> None:
        self._put(target, None)


class ProcessSession(TransportSession):
    """One forked OS process per worker over bounded queues."""

    name = "processes"

    def __init__(self, job: RuntimeJob) -> None:
        self._job = job
        self.blocks = 0
        self._results: Dict[int, tuple] = {}
        self._live_metrics: Dict[int, dict] = {}
        self._live_spans: Dict[int, list] = {}
        self._failure: Optional[BaseException] = None
        context = preferred_context()
        self.workers: List = []
        try:
            # Queue construction can itself fail in sandboxes (sem_open
            # denied), so it sits under the same fallback guard as process
            # start-up.
            self.queues = [context.Queue(maxsize=job.queue_batches) for _ in job.specs]
            self._out_queue = context.Queue()
            self._abort = context.Event()
            self.workers = [
                context.Process(
                    target=_process_worker_main,
                    args=(
                        spec, self.queues, self._out_queue, job.micro_batch_size,
                        self._abort, job.metrics, job.metrics_interval, job.trace,
                    ),
                    name=f"runtime-worker-{spec.index}",
                    daemon=True,
                )
                for spec in job.specs
            ]
            for worker in self.workers:
                worker.start()
        except (OSError, PermissionError) as error:
            for worker in self.workers:
                if worker.is_alive():
                    worker.terminate()
                    worker.join(timeout=5.0)
            raise WorkerStartError(f"cannot start worker processes: {error}") from error
        self._emitter = BatchingEmitter(_DriverQueuePutter(self), job.micro_batch_size)

    def send(self, target: int, channel: Hashable, tagged: Tagged) -> None:
        self._emitter.send(target, channel, tagged)

    def done(self, target: int) -> None:
        self._emitter.done(target)

    def _take_result(self, message) -> None:
        """Record one worker message; a failure aborts the whole run."""
        index, kind, payload = message
        if kind == "metrics":
            self._live_metrics[index] = payload
            return
        if kind == "spans":
            self._live_spans.setdefault(index, []).extend(payload)
            return
        if kind != "ok":
            self._abort.set()
            # Remember the failure: a metrics poll draining the queue may
            # consume the error message before finish() gets to it.
            self._failure = RuntimeError(f"worker {index} failed:\n{payload}")
            raise self._failure
        self._results[index] = message
        final_metrics = payload[-1]
        if final_metrics:
            self._live_metrics[index] = final_metrics

    def drain_results(self) -> None:
        while True:
            try:
                self._take_result(self._out_queue.get_nowait())
            except queue_module.Empty:
                return

    def metrics(self) -> List[dict]:
        try:
            self.drain_results()
        except RuntimeError:
            pass  # stored in self._failure; finish() raises it
        return [self._live_metrics[index] for index in sorted(self._live_metrics)]

    def trace_spans(self) -> List[dict]:
        try:
            self.drain_results()
        except RuntimeError:
            pass  # stored in self._failure; finish() raises it
        return [
            span
            for index in sorted(self._live_spans)
            for span in self._live_spans[index]
        ]

    def finish(self) -> List[WorkerReport]:
        self._emitter.flush()
        if self._failure is not None:
            self._abort.set()
            self._join_workers()
            raise self._failure
        count = len(self._job.specs)
        try:
            grace_polls = 5
            while len(self._results) < count:
                try:
                    message = self._out_queue.get(timeout=_POLL_INTERVAL)
                except queue_module.Empty:
                    missing = sorted(set(range(count)) - set(self._results))
                    if any(self.workers[index].is_alive() for index in missing):
                        # Slow workers (large final window drains) are waited
                        # on for as long as they live — no arbitrary deadline.
                        continue
                    # Every missing worker has exited; its result may still
                    # be in flight through the queue's feeder pipe, so poll a
                    # few more times before declaring it lost.
                    grace_polls -= 1
                    if grace_polls <= 0:
                        raise RuntimeError(
                            f"workers {missing} exited without a result"
                        ) from None
                    continue
                self._take_result(message)
        except BaseException:
            # Unblock any worker parked on a full queue of a dead consumer.
            self._abort.set()
            raise
        finally:
            self._join_workers()
        return [decode_report(self._results[index][2]) for index in range(count)]

    def _join_workers(self) -> None:
        for worker in self.workers:
            worker.join(timeout=5.0)
        for worker in self.workers:
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()

    @property
    def backpressure_blocks(self) -> int:
        return self.blocks

    def _cleanup(self, failed: bool) -> None:
        if failed:
            self._abort.set()
        self._join_workers()


class ProcessTransport(Transport):
    name = "processes"

    def start(self, job: RuntimeJob, placement: Optional[Placement] = None) -> ProcessSession:
        return ProcessSession(job)


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def get_transport(name: str) -> Transport:
    """Look one transport up by name (``inline``/``threads``/``processes``/``sockets``)."""
    if name == "inline":
        return InlineTransport()
    if name == "threads":
        return ThreadTransport()
    if name == "processes":
        return ProcessTransport()
    if name == "sockets":
        from .sockets import SocketTransport

        return SocketTransport()
    raise ValueError(
        f"unknown transport {name!r}; expected one of "
        "('inline', 'threads', 'processes', 'sockets')"
    )


#: Transport names usable for parallel (multi-worker) execution.
PARALLEL_TRANSPORTS = ("threads", "processes", "sockets")
#: Every transport name, including the single-threaded inline one.
ALL_TRANSPORTS = ("inline",) + PARALLEL_TRANSPORTS
