"""The transport-agnostic runtime: one worker/channel/watermark substrate.

Every execution backend in this codebase — the partitioned continuous
:class:`~repro.stream.StreamQuery`, the shared-nothing process shards of
:mod:`repro.parallel`, and the pipelined/partitioned dataflow graphs of
:mod:`repro.dataflow` — runs on the same four primitives:

* :class:`Channel` — bounded backpressuring FIFO with micro-batch draining
  and the multi-producer done-sentinel close protocol
  (:mod:`repro.runtime.channel`), plus :class:`ChannelWatermarks`, the
  per-channel min-merge that enforces the ``min over partitions`` stage
  watermark without shared state;
* :class:`Worker` — the one spec-driven operator loop (route → operate →
  emit → close-sentinel) every backend executes
  (:mod:`repro.runtime.worker`);
* :class:`Transport` — pluggable worker placement and wiring: ``inline`` /
  ``threads`` / ``processes`` / ``sockets``
  (:mod:`repro.runtime.transport`, :mod:`repro.runtime.sockets`);
* :class:`Placement` — worker index → ``host:port`` map for the socket
  transport; unplaced indices spawn locally
  (:mod:`repro.runtime.placement`).

``python -m repro.runtime.worker --listen HOST:PORT`` starts a standalone
worker a remote driver can place shards on — the entry point of
distributed execution.
"""

from .channel import Channel, ChannelClosed, ChannelWatermarks
from .placement import Placement, parse_host_port, parse_placement

# Worker/transport exports resolve lazily (PEP 562) so that
# ``python -m repro.runtime.worker`` can execute the worker module as
# ``__main__`` without this package having already imported it.
_LAZY_EXPORTS = {
    "SOURCE_CHANNEL": "worker",
    "Worker": "worker",
    "WorkerReport": "worker",
    "decode_report": "worker",
    "encode_report": "worker",
    "run_worker": "worker",
    "ALL_TRANSPORTS": "transport",
    "PARALLEL_TRANSPORTS": "transport",
    "RuntimeJob": "transport",
    "Transport": "transport",
    "TransportSession": "transport",
    "WorkerStartError": "transport",
    "available_cpus": "transport",
    "get_transport": "transport",
    "preferred_context": "transport",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "ALL_TRANSPORTS",
    "Channel",
    "ChannelClosed",
    "ChannelWatermarks",
    "PARALLEL_TRANSPORTS",
    "Placement",
    "RuntimeJob",
    "SOURCE_CHANNEL",
    "Transport",
    "TransportSession",
    "Worker",
    "WorkerReport",
    "WorkerStartError",
    "available_cpus",
    "decode_report",
    "encode_report",
    "get_transport",
    "parse_host_port",
    "parse_placement",
    "preferred_context",
    "run_worker",
]
