"""repro — Outer and anti joins in temporal-probabilistic databases.

A from-scratch Python reproduction of

    K. Papaioannou, M. Theobald, M. Böhlen.
    "Outer and Anti Joins in Temporal-Probabilistic Databases." ICDE 2019.

The public API re-exports the pieces a typical user needs:

* the data model (:class:`Schema`, :class:`TPTuple`, :class:`TPRelation`,
  :class:`Interval`, join conditions),
* the TP join operators built on generalized lineage-aware temporal windows
  (:func:`tp_left_outer_join`, :func:`tp_anti_join`, ...),
* the window-level entry points used by the benchmarks (:func:`nj_wuo`,
  :func:`nj_wuon`, :func:`nj_wn`),
* the baselines (Temporal Alignment and the naive oracle),
* the synthetic dataset generators standing in for the paper's WebKit and
  MeteoSwiss workloads, and
* the SQL-ish query engine front end (:func:`repro.engine.execute_sql`).

Quickstart::

    from repro import Schema, TPRelation, equi_join_on, tp_left_outer_join

    a = TPRelation.from_rows(
        Schema.of("Name", "Loc"),
        [
            ("Ann", "ZAK", "a1", 2, 8, 0.7),
            ("Jim", "WEN", "a2", 7, 10, 0.8),
        ],
        name="a",
    )
    b = TPRelation.from_rows(
        Schema.of("Hotel", "Loc"),
        [
            ("hotel3", "SOR", "b1", 1, 4, 0.9),
            ("hotel2", "ZAK", "b2", 5, 8, 0.6),
            ("hotel1", "ZAK", "b3", 4, 6, 0.7),
        ],
        name="b",
    )
    theta = equi_join_on(a.schema, b.schema, [("Loc", "Loc")])
    print(tp_left_outer_join(a, b, theta).pretty())
"""

from .baselines import (
    naive_anti_join,
    naive_full_outer_join,
    naive_left_outer_join,
    naive_windows,
    ta_anti_join,
    ta_full_outer_join,
    ta_left_outer_join,
    ta_wuo,
    ta_wuon,
)
from .core import (
    Window,
    WindowClass,
    WindowSet,
    compute_windows,
    nj_wn,
    nj_wuo,
    nj_wuon,
    stream_anti_join,
    stream_left_outer_join,
    stream_windows,
    tp_anti_join,
    tp_full_outer_join,
    tp_inner_join,
    tp_left_outer_join,
    tp_right_outer_join,
)
from .lineage import (
    EventSpace,
    LineageExpr,
    MonteCarloEstimator,
    ProbabilityComputer,
    probability,
    var,
)
from .dataflow import DataflowQuery, NodeSpec, Revision, RevisionKind
from .options import ExecutionOptions
from .parallel import ParallelConfig, parallel_tp_join
from .recovery import RecoveryEvent
from .relation import (
    EquiJoinCondition,
    PredicateCondition,
    Schema,
    TPRelation,
    TPTuple,
    ThetaCondition,
    TrueCondition,
    equi_join_on,
)
from .stream import (
    ContinuousAntiJoin,
    ContinuousLeftOuterJoin,
    StreamDef,
    StreamQuery,
    StreamQueryConfig,
    StreamSource,
)
from .temporal import Interval, IntervalSet

__version__ = "1.0.0"

__all__ = [
    "ContinuousAntiJoin",
    "ContinuousLeftOuterJoin",
    "DataflowQuery",
    "EquiJoinCondition",
    "EventSpace",
    "ExecutionOptions",
    "Interval",
    "NodeSpec",
    "Revision",
    "RevisionKind",
    "IntervalSet",
    "LineageExpr",
    "MonteCarloEstimator",
    "ParallelConfig",
    "PredicateCondition",
    "ProbabilityComputer",
    "RecoveryEvent",
    "Schema",
    "StreamDef",
    "StreamQuery",
    "StreamQueryConfig",
    "StreamSource",
    "TPRelation",
    "TPTuple",
    "ThetaCondition",
    "TrueCondition",
    "Window",
    "WindowClass",
    "WindowSet",
    "compute_windows",
    "equi_join_on",
    "naive_anti_join",
    "naive_full_outer_join",
    "naive_left_outer_join",
    "naive_windows",
    "nj_wn",
    "nj_wuo",
    "nj_wuon",
    "parallel_tp_join",
    "probability",
    "stream_anti_join",
    "stream_left_outer_join",
    "stream_windows",
    "ta_anti_join",
    "ta_full_outer_join",
    "ta_left_outer_join",
    "ta_wuo",
    "ta_wuon",
    "tp_anti_join",
    "tp_full_outer_join",
    "tp_inner_join",
    "tp_left_outer_join",
    "tp_right_outer_join",
    "var",
    "__version__",
]
