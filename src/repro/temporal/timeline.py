"""Endpoint timelines and segmentation.

Both the lineage-aware window algorithms and the Temporal Alignment baseline
reason about the *change points* of a set of intervals: the time points at
which some tuple starts or stops being valid.  Between two consecutive change
points nothing changes, so any per-time-point definition (such as the window
definitions of the paper's Table I) can be evaluated segment by segment.

This module provides the segmentation primitives shared by the naive oracle,
the Temporal Alignment baseline and several tests.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from .interval import Interval


def change_points(intervals: Iterable[Interval]) -> list[int]:
    """Return the sorted, de-duplicated start and end points of ``intervals``."""
    points: set[int] = set()
    for interval in intervals:
        points.add(interval.start)
        points.add(interval.end)
    return sorted(points)


def segments(intervals: Iterable[Interval]) -> list[Interval]:
    """Return the elementary segments induced by a set of intervals.

    The elementary segments partition the span between the earliest start and
    the latest end such that no interval starts or ends strictly inside a
    segment.
    """
    points = change_points(intervals)
    return [Interval(a, b) for a, b in zip(points, points[1:])]


def segments_within(frame: Interval, intervals: Iterable[Interval]) -> list[Interval]:
    """Return the elementary segments of ``frame`` induced by ``intervals``.

    Only the change points strictly inside ``frame`` split it; the result is a
    partition of ``frame``.  This is the segmentation used to derive negating
    windows: the interval of a tuple of the positive relation is split at
    every start or end of a matching tuple of the negative relation.
    """
    return frame.split_at_points(change_points(intervals))


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """A sweep event: an interval either starts or ends at ``time``."""

    time: int
    is_start: bool
    payload: object

    @property
    def is_end(self) -> bool:
        return not self.is_start


def sweep_events(items: Iterable[tuple[Interval, object]]) -> list[TimelineEvent]:
    """Turn ``(interval, payload)`` pairs into a sorted event list.

    End events are ordered before start events at equal time so that a
    half-open interval ending at *t* is no longer active when another one
    starting at *t* is processed — matching the half-open semantics used
    throughout the paper.
    """
    events: list[TimelineEvent] = []
    for interval, payload in items:
        events.append(TimelineEvent(interval.start, True, payload))
        events.append(TimelineEvent(interval.end, False, payload))
    events.sort(key=lambda event: (event.time, event.is_start))
    return events


class Timeline:
    """A queryable index over a fixed set of intervals.

    The timeline answers "which payloads are valid at time point *t*" and
    "which payloads are valid somewhere within interval *i*" queries.  It is
    used by the naive baseline (as the ground-truth evaluator) and by the
    dataset statistics module; the core NJ algorithms deliberately do *not*
    use it — they only need a single ordered sweep.
    """

    __slots__ = ("_entries", "_starts")

    def __init__(self, items: Iterable[tuple[Interval, object]]) -> None:
        self._entries: list[tuple[Interval, object]] = sorted(
            items, key=lambda entry: (entry[0].start, entry[0].end)
        )
        self._starts: list[int] = [entry[0].start for entry in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def valid_at(self, time_point: int) -> list[object]:
        """Return the payloads of all intervals containing ``time_point``."""
        upper = bisect_right(self._starts, time_point)
        return [
            payload
            for interval, payload in self._entries[:upper]
            if time_point in interval
        ]

    def overlapping(self, query: Interval) -> list[object]:
        """Return the payloads of all intervals overlapping ``query``."""
        upper = bisect_left(self._starts, query.end)
        return [
            payload
            for interval, payload in self._entries[:upper]
            if interval.overlaps(query)
        ]

    def change_points_within(self, frame: Interval) -> list[int]:
        """Change points of the indexed intervals strictly inside ``frame``."""
        points: set[int] = set()
        for interval, _payload in self._entries:
            if interval.start >= frame.end:
                break
            if not interval.overlaps(frame):
                continue
            if frame.start < interval.start < frame.end:
                points.add(interval.start)
            if frame.start < interval.end < frame.end:
                points.add(interval.end)
        return sorted(points)


def partition_by_validity(
    frame: Interval, others: Sequence[Interval]
) -> list[tuple[Interval, tuple[int, ...]]]:
    """Partition ``frame`` into segments with a constant set of valid ``others``.

    Returns ``(segment, active_indexes)`` pairs in temporal order, where
    ``active_indexes`` are the positions in ``others`` of the intervals that
    cover the whole segment.  Segments are maximal: consecutive segments have
    different active sets.
    """
    relevant = [other for other in others if other.overlaps(frame)]
    pieces = segments_within(frame, relevant)
    raw: list[tuple[Interval, tuple[int, ...]]] = []
    for piece in pieces:
        active = tuple(
            index for index, other in enumerate(others) if other.contains_interval(piece)
        )
        raw.append((piece, active))
    # Merge consecutive segments with identical active sets so the result is
    # maximal (the window definitions require maximality).
    merged: list[tuple[Interval, tuple[int, ...]]] = []
    for piece, active in raw:
        if merged and merged[-1][1] == active and merged[-1][0].end == piece.start:
            merged[-1] = (Interval(merged[-1][0].start, piece.end), active)
        else:
            merged.append((piece, active))
    return merged
