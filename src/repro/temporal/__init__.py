"""Temporal substrate: intervals, interval sets, timelines and coalescing."""

from .allen import AllenRelation, allen_relation, intervals_overlap, inverse
from .coalesce import coalesce_annotated, coalesce_intervals, is_coalesced
from .interval import Interval, IntervalError, intersect_all, span, total_duration
from .intervalset import IntervalSet
from .timeline import (
    Timeline,
    TimelineEvent,
    change_points,
    partition_by_validity,
    segments,
    segments_within,
    sweep_events,
)

__all__ = [
    "AllenRelation",
    "Interval",
    "IntervalError",
    "IntervalSet",
    "Timeline",
    "TimelineEvent",
    "allen_relation",
    "change_points",
    "coalesce_annotated",
    "coalesce_intervals",
    "intersect_all",
    "intervals_overlap",
    "inverse",
    "is_coalesced",
    "partition_by_validity",
    "segments",
    "segments_within",
    "span",
    "total_duration",
    "sweep_events",
]
