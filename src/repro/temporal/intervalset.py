"""Sets of disjoint intervals.

An :class:`IntervalSet` maintains a canonical (sorted, coalesced) collection
of disjoint intervals.  The LAWAU algorithm conceptually computes, per input
tuple of the positive relation, the complement of the union of its overlapping
windows within the tuple's own interval — exactly the ``complement_within``
operation provided here.  The class is also used by the naive baseline and by
the dataset statistics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .interval import Interval


class IntervalSet:
    """An immutable-by-convention set of disjoint, coalesced intervals."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: list[Interval] = _coalesce(intervals)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(tuple(self._intervals))

    def __repr__(self) -> str:
        parts = ", ".join(str(i) for i in self._intervals)
        return f"IntervalSet([{parts}])"

    def __contains__(self, time_point: int) -> bool:
        return any(time_point in interval for interval in self._intervals)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The disjoint intervals of the set in ascending order."""
        return tuple(self._intervals)

    @property
    def duration(self) -> int:
        """Total number of covered time points."""
        return sum(interval.duration for interval in self._intervals)

    def span(self) -> Optional[Interval]:
        """Smallest single interval covering the whole set (or ``None``)."""
        if not self._intervals:
            return None
        return Interval(self._intervals[0].start, self._intervals[-1].end)

    # ------------------------------------------------------------------ #
    # set algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        return IntervalSet([*self._intervals, *other._intervals])

    def add(self, interval: Interval) -> "IntervalSet":
        """Return a new set with ``interval`` added."""
        return IntervalSet([*self._intervals, interval])

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection, computed by a merge over both sorted lists."""
        result: list[Interval] = []
        left, right = self._intervals, other._intervals
        i = j = 0
        while i < len(left) and j < len(right):
            overlap = left[i].intersect(right[j])
            if overlap is not None:
                result.append(overlap)
            if left[i].end <= right[j].end:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self \\ other``."""
        result: list[Interval] = []
        for interval in self._intervals:
            pieces = [interval]
            for hole in other._intervals:
                if hole.start >= interval.end:
                    break
                next_pieces: list[Interval] = []
                for piece in pieces:
                    next_pieces.extend(piece.difference(hole))
                pieces = next_pieces
            result.extend(pieces)
        return IntervalSet(result)

    def complement_within(self, frame: Interval) -> "IntervalSet":
        """Return the parts of ``frame`` not covered by this set.

        This is the gap computation at the heart of unmatched-window
        derivation: given a tuple's full interval (the frame) and the
        intervals where it overlaps with matching tuples, the complement is
        exactly the set of unmatched sub-intervals.
        """
        return IntervalSet([frame]).difference(self)

    def covers(self, interval: Interval) -> bool:
        """Return ``True`` if every time point of ``interval`` is in the set."""
        return not IntervalSet([interval]).difference(self)

    def overlaps(self, interval: Interval) -> bool:
        """Return ``True`` if any time point of ``interval`` is in the set."""
        return bool(self.intersect(IntervalSet([interval])))


def _coalesce(intervals: Iterable[Interval]) -> list[Interval]:
    """Sort and merge overlapping or adjacent intervals."""
    ordered = sorted(intervals)
    merged: list[Interval] = []
    for interval in ordered:
        if merged and interval.start <= merged[-1].end:
            if interval.end > merged[-1].end:
                merged[-1] = Interval(merged[-1].start, interval.end)
        else:
            merged.append(interval)
    return merged
