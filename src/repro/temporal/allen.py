"""Allen's interval relations.

The thirteen relations of Allen's interval algebra give a complete,
mutually exclusive classification of how two intervals relate.  They are not
needed by the core join algorithms (which only use ``overlaps``), but they are
part of any credible temporal substrate: the test suite uses them to verify
the overlap-join predicate, and the dataset statistics module reports the
distribution of relations in a workload.
"""

from __future__ import annotations

from enum import Enum

from .interval import Interval


class AllenRelation(str, Enum):
    """The thirteen basic relations of Allen's interval algebra."""

    BEFORE = "before"
    AFTER = "after"
    MEETS = "meets"
    MET_BY = "met_by"
    OVERLAPS = "overlaps"
    OVERLAPPED_BY = "overlapped_by"
    STARTS = "starts"
    STARTED_BY = "started_by"
    DURING = "during"
    CONTAINS = "contains"
    FINISHES = "finishes"
    FINISHED_BY = "finished_by"
    EQUAL = "equal"


#: Relations under which the two intervals share at least one time point.
OVERLAPPING_RELATIONS = frozenset(
    {
        AllenRelation.OVERLAPS,
        AllenRelation.OVERLAPPED_BY,
        AllenRelation.STARTS,
        AllenRelation.STARTED_BY,
        AllenRelation.DURING,
        AllenRelation.CONTAINS,
        AllenRelation.FINISHES,
        AllenRelation.FINISHED_BY,
        AllenRelation.EQUAL,
    }
)


def allen_relation(a: Interval, b: Interval) -> AllenRelation:
    """Classify the relation of interval ``a`` with respect to ``b``."""
    if a.start == b.start and a.end == b.end:
        return AllenRelation.EQUAL
    if a.end < b.start:
        return AllenRelation.BEFORE
    if b.end < a.start:
        return AllenRelation.AFTER
    if a.end == b.start:
        return AllenRelation.MEETS
    if b.end == a.start:
        return AllenRelation.MET_BY
    if a.start == b.start:
        return AllenRelation.STARTS if a.end < b.end else AllenRelation.STARTED_BY
    if a.end == b.end:
        return AllenRelation.FINISHES if a.start > b.start else AllenRelation.FINISHED_BY
    if b.start < a.start and a.end < b.end:
        return AllenRelation.DURING
    if a.start < b.start and b.end < a.end:
        return AllenRelation.CONTAINS
    if a.start < b.start:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY


def inverse(relation: AllenRelation) -> AllenRelation:
    """Return the inverse relation (the relation of ``b`` w.r.t. ``a``)."""
    pairs = {
        AllenRelation.BEFORE: AllenRelation.AFTER,
        AllenRelation.AFTER: AllenRelation.BEFORE,
        AllenRelation.MEETS: AllenRelation.MET_BY,
        AllenRelation.MET_BY: AllenRelation.MEETS,
        AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
        AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
        AllenRelation.STARTS: AllenRelation.STARTED_BY,
        AllenRelation.STARTED_BY: AllenRelation.STARTS,
        AllenRelation.DURING: AllenRelation.CONTAINS,
        AllenRelation.CONTAINS: AllenRelation.DURING,
        AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
        AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
        AllenRelation.EQUAL: AllenRelation.EQUAL,
    }
    return pairs[relation]


def intervals_overlap(a: Interval, b: Interval) -> bool:
    """Overlap test expressed through Allen relations (used in tests)."""
    return allen_relation(a, b) in OVERLAPPING_RELATIONS
