"""Half-open time intervals.

The temporal-probabilistic data model of Papaioannou et al. attaches a
half-open validity interval ``[start, end)`` to every tuple.  Intervals are
defined over a discrete, totally ordered time domain; in this library the
domain is the integers (the paper's examples use day numbers), but any
comparable, subtractable type works for the non-arithmetic operations.

The :class:`Interval` class is immutable and hashable so it can be used as a
dictionary key, stored in sets and shared freely between tuples and windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional


class IntervalError(ValueError):
    """Raised when an interval is constructed or combined incorrectly."""


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A half-open interval ``[start, end)`` over a discrete time domain.

    The ordering of intervals is lexicographic on ``(start, end)``, which is
    the order used by the sweeping algorithms (LAWAU / LAWAN) of the paper.

    Attributes:
        start: inclusive starting time point.
        end: exclusive ending time point; must be strictly greater than
            ``start`` (empty intervals are not representable on purpose —
            an "empty" result is modelled as ``None``).
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise IntervalError(
                f"interval end must be greater than start, got [{self.start}, {self.end})"
            )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def duration(self) -> int:
        """Number of time points covered by the interval."""
        return self.end - self.start

    def __contains__(self, time_point: int) -> bool:
        return self.start <= time_point < self.end

    def contains_interval(self, other: "Interval") -> bool:
        """Return ``True`` if ``other`` lies fully within this interval."""
        return self.start <= other.start and other.end <= self.end

    def time_points(self) -> Iterator[int]:
        """Iterate over the individual time points of the interval.

        Only meaningful (and only used) for integer time domains; the naive
        per-time-point baseline relies on it.
        """
        return iter(range(self.start, self.end))

    # ------------------------------------------------------------------ #
    # relationships
    # ------------------------------------------------------------------ #
    def overlaps(self, other: "Interval") -> bool:
        """Return ``True`` if the two intervals share at least one time point."""
        return self.start < other.end and other.start < self.end

    def meets(self, other: "Interval") -> bool:
        """Return ``True`` if this interval ends exactly where ``other`` starts."""
        return self.end == other.start

    def adjacent(self, other: "Interval") -> bool:
        """Return ``True`` if the intervals touch without overlapping."""
        return self.end == other.start or other.end == self.start

    def before(self, other: "Interval") -> bool:
        """Return ``True`` if this interval ends at or before ``other`` starts."""
        return self.end <= other.start

    # ------------------------------------------------------------------ #
    # combination
    # ------------------------------------------------------------------ #
    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """Return the intersection, or ``None`` if the intervals are disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start < end:
            return Interval(start, end)
        return None

    def union(self, other: "Interval") -> "Interval":
        """Return the union of two overlapping or adjacent intervals.

        Raises:
            IntervalError: if the intervals are neither overlapping nor
                adjacent (their union would not be an interval).
        """
        if not (self.overlaps(other) or self.adjacent(other)):
            raise IntervalError(f"union of disjoint intervals {self} and {other}")
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def difference(self, other: "Interval") -> list["Interval"]:
        """Return the parts of this interval not covered by ``other``.

        The result contains zero, one or two intervals, ordered by start.
        """
        overlap = self.intersect(other)
        if overlap is None:
            return [self]
        pieces: list[Interval] = []
        if self.start < overlap.start:
            pieces.append(Interval(self.start, overlap.start))
        if overlap.end < self.end:
            pieces.append(Interval(overlap.end, self.end))
        return pieces

    def split_at(self, time_point: int) -> tuple["Interval", ...]:
        """Split the interval at an interior time point.

        Splitting at a point outside the interval, or at its start, returns
        the interval unchanged (as a 1-tuple).
        """
        if self.start < time_point < self.end:
            return (Interval(self.start, time_point), Interval(time_point, self.end))
        return (self,)

    def split_at_points(self, points: Iterable[int]) -> list["Interval"]:
        """Split the interval at every interior point of ``points``.

        The result is ordered by start and covers exactly this interval.
        """
        interior = sorted({p for p in points if self.start < p < self.end})
        pieces: list[Interval] = []
        current_start = self.start
        for point in interior:
            pieces.append(Interval(current_start, point))
            current_start = point
        pieces.append(Interval(current_start, self.end))
        return pieces

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        return f"[{self.start},{self.end})"

    def __repr__(self) -> str:
        return f"Interval({self.start}, {self.end})"


def span(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Return the smallest interval covering all of ``intervals``.

    Returns ``None`` for an empty input.
    """
    items = list(intervals)
    if not items:
        return None
    return Interval(min(i.start for i in items), max(i.end for i in items))


def intersect_all(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Return the common intersection of all intervals, or ``None``."""
    items = list(intervals)
    if not items:
        return None
    start = max(i.start for i in items)
    end = min(i.end for i in items)
    if start < end:
        return Interval(start, end)
    return None


def total_duration(intervals: Iterable[Interval]) -> int:
    """Total number of time points covered, counting overlaps only once."""
    ordered = sorted(intervals)
    covered = 0
    current: Optional[Interval] = None
    for interval in ordered:
        if current is None:
            current = interval
        elif interval.start <= current.end:
            if interval.end > current.end:
                current = Interval(current.start, interval.end)
        else:
            covered += current.duration
            current = interval
    if current is not None:
        covered += current.duration
    return covered
