"""Temporal coalescing of value-annotated intervals.

Coalescing merges adjacent or overlapping intervals that carry the same
value.  Temporal-probabilistic relations require a slightly unusual variant:
two tuples may only be merged if their *facts* are equal **and** their
lineages are equivalent, otherwise the probability attached to the merged
interval would be wrong.  The generic machinery here is parameterised by a
key function so the relation layer can plug in fact+lineage equality.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence, TypeVar

from .interval import Interval

T = TypeVar("T")


def coalesce_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Merge overlapping or adjacent plain intervals.

    The result is sorted and pairwise disjoint with gaps preserved.
    """
    ordered = sorted(intervals)
    merged: list[Interval] = []
    for interval in ordered:
        if merged and interval.start <= merged[-1].end:
            if interval.end > merged[-1].end:
                merged[-1] = Interval(merged[-1].start, interval.end)
        else:
            merged.append(interval)
    return merged


def coalesce_annotated(
    items: Iterable[tuple[Interval, T]],
    key: Callable[[T], Hashable],
    merge: Callable[[T, T], T] | None = None,
) -> list[tuple[Interval, T]]:
    """Coalesce ``(interval, value)`` pairs whose values have equal keys.

    Args:
        items: interval/value pairs in any order.
        key: function computing the equality key of a value; only pairs with
            equal keys and overlapping or adjacent intervals are merged.
        merge: optional function combining the values of two merged pairs;
            defaults to keeping the first value (appropriate when equal keys
            imply interchangeable values).

    Returns:
        The coalesced pairs, sorted by value key group and interval start.
    """
    groups: dict[Hashable, list[tuple[Interval, T]]] = {}
    order: list[Hashable] = []
    for interval, value in items:
        group_key = key(value)
        if group_key not in groups:
            groups[group_key] = []
            order.append(group_key)
        groups[group_key].append((interval, value))

    result: list[tuple[Interval, T]] = []
    for group_key in order:
        members = sorted(groups[group_key], key=lambda pair: pair[0])
        current_interval, current_value = members[0]
        for interval, value in members[1:]:
            if interval.start <= current_interval.end:
                end = max(current_interval.end, interval.end)
                current_interval = Interval(current_interval.start, end)
                if merge is not None:
                    current_value = merge(current_value, value)
            else:
                result.append((current_interval, current_value))
                current_interval, current_value = interval, value
        result.append((current_interval, current_value))
    return result


def is_coalesced(
    items: Sequence[tuple[Interval, T]], key: Callable[[T], Hashable]
) -> bool:
    """Check whether no two pairs with equal keys overlap or are adjacent."""
    groups: dict[Hashable, list[Interval]] = {}
    for interval, value in items:
        groups.setdefault(key(value), []).append(interval)
    for intervals in groups.values():
        ordered = sorted(intervals)
        for left, right in zip(ordered, ordered[1:]):
            if right.start <= left.end:
                return False
    return True
