"""Worker specs for transport-parallel continuous and dataflow execution.

Historically this module owned the whole process backend — router, queue
plumbing, worker loops.  That machinery is now the unified runtime layer
(:mod:`repro.runtime`): one worker loop, one channel/watermark
implementation, pluggable transports (``inline`` / ``threads`` /
``processes`` / ``sockets``).  What remains here is the *spec* layer — the
plain picklable dataclasses every transport rebuilds its workers from — and
thin compatibility wrappers over the runtime entry points:

* :class:`StreamShardSpec` — one shard of a continuous TP join: the worker
  collects its settled outputs and reports them with emit latencies and
  late-drop counters;
* :class:`DataflowNodeSpec` — one *(node, partition)* worker of a dataflow
  graph: watermark channels to min-merge, downstream routing entries, and
  the producer count of the done-sentinel close protocol;
* :func:`graph_node_specs` — compile a
  :class:`~repro.dataflow.DataflowGraph` into worker specs with contiguous
  per-node worker indices;
* :func:`run_process_partitions` / :func:`run_graph_processes` — the
  historical process-backend entry points, now one-liners over the runtime.

Emit latencies remain comparable across the process boundary because
``time.perf_counter`` reads ``CLOCK_MONOTONIC``, which is system-wide on the
platforms with ``fork``; the routers stamp ingestion before an element can
sit in a queue, so latencies include cross-process queueing time.

Trace context rides the same path: when tracing is on
(:class:`repro.runtime.RuntimeJob` ``trace=True``) each sampled
:class:`~repro.stream.elements.Tagged` element carries a compact
``(trace_id, parent_span_id)`` pair which the compact codecs in
:mod:`repro.parallel.serialize` preserve across the process boundary, and
each worker's spans come back inside its :class:`~repro.runtime.WorkerReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from dataclasses import field as dataclass_field
from typing import Callable, Iterable, List, Optional

from ..columnar import resolve_layout
from ..relation import Schema, ThetaCondition, TPTuple
from ..runtime import SOURCE_CHANNEL, WorkerReport, WorkerStartError  # noqa: F401
from ..stream.elements import LEFT, RIGHT, Tagged
from ..stream.operators import continuous_join
from .serialize import events_from_probabilities

__all__ = [
    "DataflowNodeSpec",
    "ProcessRunOutcome",
    "StreamShardSpec",
    "WorkerStartError",
    "graph_node_specs",
    "run_graph_processes",
    "run_process_partitions",
]


@dataclass(frozen=True)
class StreamShardSpec:
    """Everything a worker needs to rebuild one continuous-join shard.

    ``event_probabilities`` ships the marginal probabilities of the base
    events when the query materializes probabilities inline: workers rebuild
    an event space from it and compute output probabilities with their
    maintainer-owned per-key computers.  ``None`` leaves probabilities unset
    (the caller computes them later, the default).

    The runtime-protocol fields have single-shard defaults: a shard has one
    producer (the router), one watermark channel per side (the merged source
    sequence), no downstream — it collects outputs and reports them.
    """

    kind: str
    left_attributes: tuple
    right_attributes: tuple
    on: tuple
    left_name: str = "r"
    right_name: str = "s"
    event_probabilities: Optional[dict] = None
    index: int = 0
    producers: int = 1
    left_channels: tuple = (SOURCE_CHANNEL,)
    right_channels: tuple = (SOURCE_CHANNEL,)
    downstream: tuple = ()
    #: Window-maintainer state layout, already resolved driver-side
    #: (``resolve_layout``) so a numpy-less worker is never asked for columns.
    #: ``"columnar"`` additionally switches socket micro-batch frames to the
    #: binary wire codec (:mod:`repro.runtime.wire`).
    layout: str = "object"

    #: Stream shards have no downstream: settled outputs are collected by
    #: the worker loop and shipped back in the report.
    collect_outputs = True
    #: Shards emit nothing downstream, so they need no watermark channel id.
    channel_id = None

    def build_join(self):
        """Instantiate the continuous join this spec describes."""
        materialize = self.event_probabilities is not None
        return continuous_join(
            self.kind,
            Schema(tuple(self.left_attributes)),
            Schema(tuple(self.right_attributes)),
            self.on,
            left_name=self.left_name,
            right_name=self.right_name,
            events=events_from_probabilities(self.event_probabilities)
            if materialize
            else None,
            materialize_probabilities=materialize,
            layout=self.layout,
        )

    def report(self, join, outputs: Optional[List[TPTuple]]) -> WorkerReport:
        """Package this shard's settled outputs and counters."""
        stats = join.maintainer.stats
        return WorkerReport(
            index=self.index,
            outputs=list(outputs or []),
            emit_latencies=list(join.emit_latencies),
            late_dropped=stats.late_positives_dropped + stats.late_negatives_dropped,
        )


@dataclass
class ProcessRunOutcome:
    """What the router hands back to :class:`StreamQuery` after a run."""

    outputs: List[TPTuple]
    emit_latencies: List[float]
    late_dropped: int
    events_processed: int
    backpressure_blocks: int


def run_process_partitions(
    spec: StreamShardSpec,
    merged: Iterable[Tagged],
    theta: ThetaCondition,
    partitions: int,
    micro_batch_size: int = 64,
    buffer_capacity: int = 1024,
) -> ProcessRunOutcome:
    """Route a merged element sequence through ``partitions`` worker processes.

    The historical process-backend entry point, now a wrapper over the
    runtime's process transport: events are hash-routed by join key,
    watermarks are broadcast, per-partition element order is preserved, and
    bounded queues backpressure the router.  Outputs are concatenated in
    partition-index order — deterministic for a fixed partition count.
    Raises :class:`~repro.runtime.WorkerStartError` strictly before any
    input element is consumed when processes cannot start.
    """
    if partitions <= 1:
        raise ValueError("run_process_partitions requires at least two partitions")
    # Imported lazily: repro.stream.query is this package's consumer, so a
    # top-level import here would be circular during package init.
    from ..stream.query import run_stream_shards

    specs = tuple(replace(spec, index=index) for index in range(partitions))
    # Right/full outer joins treat right events as positives too (mirrored
    # maintainer), so both sides get an ingestion stamp for emit latency.
    stamp_right = spec.kind in ("right_outer", "full_outer")
    reports, events_processed, blocks, _backend = run_stream_shards(
        "processes",
        specs,
        merged,
        theta,
        stamp_right,
        micro_batch_size=micro_batch_size,
        buffer_capacity=buffer_capacity,
    )
    outputs: List[TPTuple] = []
    latencies: List[float] = []
    late_dropped = 0
    for report in reports:
        outputs.extend(report.outputs)
        latencies.extend(report.emit_latencies)
        late_dropped += report.late_dropped
    return ProcessRunOutcome(
        outputs=outputs,
        emit_latencies=latencies,
        late_dropped=late_dropped,
        events_processed=events_processed,
        backpressure_blocks=blocks,
    )


# --------------------------------------------------------------------------- #
# dataflow graphs: worker-per-(node, partition) specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DataflowNodeSpec:
    """Everything a worker needs to run one dataflow node partition.

    One spec — and one runtime worker — exists per *(node, partition)*: a
    node with ``NodeSpec.partitions = K`` fans out into K shared-nothing
    workers over disjoint slices of its key space, multiplying the pipeline
    axis (worker per chained node) by the partition axis.

    ``downstream`` lists ``(first worker index, consumer partitions, side,
    key indices)`` routing entries: revisions go to ``first +
    stable_hash(key) % partitions`` (the key is the output fact projected on
    ``key indices`` — the consumer θ's attributes for that side), watermarks
    are broadcast to all of the consumer's partitions.  ``producers`` is the
    number of incoming FIFO channels (parent source edges plus upstream
    partition workers) — the count of done sentinels to await before
    closing.  ``left_channels`` / ``right_channels`` name those channels so
    the worker can min-merge per-channel watermarks (the stage output
    watermark = min over the upstream partitions).

    ``tap`` / ``probe`` are optional in-process observation hooks (the
    serving layer's seam): ``tap(channel_id, element)`` is called with every
    output element the worker dispatches, ``probe(channel_id, join)`` with
    the operator instance right after construction.  Both are callables, so
    a spec carrying them cannot cross a process/socket boundary — the graph
    driver rejects that combination before starting any worker.
    """

    index: int
    node_index: int
    name: str
    kind: str
    partition: int
    partitions: int
    left_attributes: tuple
    right_attributes: tuple
    on: tuple
    left_name: str
    right_name: str
    downstream: tuple
    producers: int
    left_channels: tuple = ()
    right_channels: tuple = ()
    early_emit: bool = False
    event_probabilities: Optional[dict] = None
    #: Resolved window-maintainer state layout (see :class:`StreamShardSpec`).
    layout: str = "object"
    tap: Optional[Callable] = dataclass_field(default=None, repr=False, compare=False)
    probe: Optional[Callable] = dataclass_field(default=None, repr=False, compare=False)

    #: Dataflow workers route downstream; settled outputs are harvested from
    #: the join itself at report time.
    collect_outputs = False

    @property
    def channel_id(self) -> tuple:
        """The watermark channel this worker's outputs arrive on downstream."""
        return ("node", self.node_index, self.partition)

    def build_join(self):
        """Instantiate the retractable join this spec describes."""
        from ..dataflow.operators import RevisionJoin

        materialize = self.event_probabilities is not None
        return RevisionJoin(
            self.kind,
            Schema(tuple(self.left_attributes)),
            Schema(tuple(self.right_attributes)),
            self.on,
            left_name=self.left_name,
            right_name=self.right_name,
            early_emit=self.early_emit,
            events=events_from_probabilities(self.event_probabilities)
            if materialize
            else None,
            materialize_probabilities=materialize,
            layout=self.layout,
        )

    def report(self, join, outputs: Optional[List[TPTuple]]) -> WorkerReport:
        """Package this partition's settled windows and revision counters."""
        stats = join.stats
        return WorkerReport(
            index=self.index,
            outputs=list(join.settled_outputs.values()),
            emit_latencies=list(join.emit_latencies),
            emit_event_lags=list(join.emit_event_lags),
            stats=(
                stats.emits,
                stats.retracts,
                stats.refines,
                stats.groups_published_early,
                stats.groups_settled,
                stats.inputs_retracted,
            ),
        )


def graph_node_specs(graph, config, taps=None, probes=None) -> List[DataflowNodeSpec]:
    """Compile a :class:`~repro.dataflow.DataflowGraph` into worker specs.

    One spec per (node, partition); worker indices are contiguous per node
    (``first_worker[i] .. first_worker[i] + partitions_i - 1``), so routing
    entries only need the first index and the partition count.

    ``taps`` / ``probes`` optionally map node names to observation callables
    attached to every partition spec of that node (see
    :class:`DataflowNodeSpec`); in-process transports only.
    """
    from ..dataflow.executor import channel_topology, downstream_table

    node_index = {name: index for index, name in enumerate(graph.node_names)}
    parts = graph.partition_counts
    first_worker: List[int] = []
    total = 0
    for count in parts:
        first_worker.append(total)
        total += count
    event_probabilities = None
    if getattr(config, "materialize_probabilities", False):
        events = graph.merged_events()
        event_probabilities = {
            name: events.probability(name) for name in events.names()
        }
    # Producer channels per node: one per incoming source edge, plus one per
    # upstream partition worker per edge (every partition of the consumer
    # receives broadcast watermarks from each of them).
    producers = [0] * len(graph.nodes)
    for source in graph.source_names:
        for consumer, _side in graph.consumers_of(source):
            producers[node_index[consumer]] += 1
    downstream_nodes = [tuple(edges) for edges in downstream_table(graph, node_index)]
    for index, edges in enumerate(downstream_nodes):
        for target, _side in edges:
            producers[target] += parts[index]
    channels = channel_topology(graph, node_index)
    specs = []
    for index, spec in enumerate(graph.nodes):
        routing = []
        for target, side in downstream_nodes[index]:
            consumer = graph.nodes[target]
            consumer_side_schema = graph.schema_of(
                consumer.left if side == LEFT else consumer.right
            )
            key_indices = tuple(
                consumer_side_schema.index(pair[0] if side == LEFT else pair[1])
                for pair in consumer.on
            )
            routing.append((first_worker[target], parts[target], side, key_indices))
        for partition in range(spec.partitions):
            specs.append(
                DataflowNodeSpec(
                    index=first_worker[index] + partition,
                    node_index=index,
                    name=spec.name,
                    kind=spec.kind,
                    partition=partition,
                    partitions=spec.partitions,
                    left_attributes=graph.schema_of(spec.left).attributes,
                    right_attributes=graph.schema_of(spec.right).attributes,
                    on=spec.on,
                    left_name=spec.left,
                    right_name=spec.right,
                    downstream=tuple(routing),
                    producers=producers[index],
                    left_channels=tuple(channels[index][LEFT]),
                    right_channels=tuple(channels[index][RIGHT]),
                    early_emit=getattr(config, "early_emit", False),
                    event_probabilities=event_probabilities,
                    layout=resolve_layout(getattr(config, "layout", "object")),
                    tap=(taps or {}).get(spec.name),
                    probe=(probes or {}).get(spec.name),
                )
            )
    return specs


def run_graph_processes(graph, config, merge_seed=None):
    """Run a dataflow graph with one OS process per node partition.

    The historical process-backend entry point, now a wrapper over the
    runtime's process transport (see
    :func:`repro.dataflow.executor.run_graph`).  Raises
    :class:`~repro.runtime.WorkerStartError` (strictly before consuming any
    source element) when processes cannot start, so callers can fall back.
    """
    from ..dataflow.executor import run_graph

    return run_graph(graph, config, merge_seed, transport="processes")
