"""Process-sharded execution of continuous TP queries.

The thread-based parallel path of :class:`repro.stream.StreamQuery` shares
one interpreter, so the GIL caps CPU-bound lineage work at one core.  This
module ports the identical topology — a router hash-partitioning events by
join key, watermarks broadcast to every partition, bounded buffers providing
backpressure — onto ``multiprocessing`` workers:

* each partition is a separate OS process running its own
  :class:`~repro.stream.operators.ContinuousJoinBase` over its own shard of
  the key space (shared-nothing: no state crosses partitions, ever);
* the router ships compactly serialized micro-batches through a bounded
  ``multiprocessing.Queue`` per worker, so a slow worker backpressures the
  router exactly like the in-process :class:`BoundedBuffer` does;
* when all inputs are drained the router sends a close sentinel, workers
  finalize their remaining windows and return their serialized outputs,
  per-tuple emit latencies and late-drop counters in one result message.

Emit latencies remain comparable across the process boundary because
``time.perf_counter`` reads ``CLOCK_MONOTONIC``, which is system-wide on the
platforms with ``fork``; the router stamps ingestion before an element can
sit in a queue, so latencies include cross-process queueing time.
"""

from __future__ import annotations

import queue as queue_module
import time
import traceback
from dataclasses import dataclass
from typing import Iterable, List

from ..relation import Schema, ThetaCondition, TPTuple
from ..stream.elements import LEFT, StreamEvent, Tagged, Watermark
from ..stream.operators import continuous_join
from .plan import stable_hash
from .pool import preferred_context
from .serialize import decode_tagged, decode_tuples, encode_tagged, encode_tuples

#: Poll interval (seconds) for queue operations that must watch worker
#: liveness.  Slow-but-alive workers are waited on indefinitely; only a dead
#: worker aborts the run.
_POLL_INTERVAL = 1.0


class WorkerStartError(RuntimeError):
    """Worker processes could not be started (sandbox without fork/spawn).

    Raised strictly *before* any input element is consumed, so callers can
    fall back to another backend over the same untouched element iterator —
    :class:`repro.stream.StreamQuery` degrades to the thread backend.
    """


@dataclass(frozen=True)
class StreamShardSpec:
    """Everything a worker process needs to rebuild its continuous join."""

    kind: str
    left_attributes: tuple
    right_attributes: tuple
    on: tuple
    left_name: str = "r"
    right_name: str = "s"

    def build_join(self):
        """Instantiate the continuous join this spec describes."""
        return continuous_join(
            self.kind,
            Schema(tuple(self.left_attributes)),
            Schema(tuple(self.right_attributes)),
            self.on,
            left_name=self.left_name,
            right_name=self.right_name,
        )


@dataclass
class ProcessRunOutcome:
    """What the router hands back to :class:`StreamQuery` after a run."""

    outputs: List[TPTuple]
    emit_latencies: List[float]
    late_dropped: int
    events_processed: int
    backpressure_blocks: int


def _stream_worker_main(index: int, spec: StreamShardSpec, in_queue, out_queue) -> None:
    """Worker process entry point: drain micro-batches, finalize, report."""
    try:
        join = spec.build_join()
        outputs: List[TPTuple] = []
        while True:
            batch = in_queue.get()
            if batch is None:
                break
            for code in batch:
                outputs.extend(join.process(decode_tagged(code)))
        outputs.extend(join.close())
        late = (
            join.maintainer.stats.late_positives_dropped
            + join.maintainer.stats.late_negatives_dropped
        )
        out_queue.put(
            (index, "ok", encode_tuples(outputs), list(join.emit_latencies), late)
        )
    except BaseException:  # noqa: BLE001 - marshalled to the router
        out_queue.put((index, "error", traceback.format_exc(), None, None))


def run_process_partitions(
    spec: StreamShardSpec,
    merged: Iterable[Tagged],
    theta: ThetaCondition,
    partitions: int,
    micro_batch_size: int = 64,
    buffer_capacity: int = 1024,
) -> ProcessRunOutcome:
    """Route a merged element sequence through ``partitions`` worker processes.

    Mirrors the thread runtime's contract: events are hash-routed by join
    key, watermarks are broadcast, per-partition element order is preserved,
    and bounded queues backpressure the router.  Outputs are concatenated in
    partition-index order — deterministic for a fixed partition count.
    """
    if partitions <= 1:
        raise ValueError("run_process_partitions requires at least two partitions")
    context = preferred_context()
    # Queue capacity is measured in micro-batches; keep the same element
    # budget the thread path's BoundedBuffer(capacity) provides.
    queue_batches = max(2, buffer_capacity // max(1, micro_batch_size))
    workers: List = []
    try:
        # Queue construction can itself fail in sandboxes (sem_open denied),
        # so it sits under the same fallback guard as process start-up.
        in_queues = [context.Queue(maxsize=queue_batches) for _ in range(partitions)]
        out_queue = context.Queue()
        workers = [
            context.Process(
                target=_stream_worker_main,
                args=(index, spec, in_queues[index], out_queue),
                name=f"stream-shard-{index}",
                daemon=True,
            )
            for index in range(partitions)
        ]
        for worker in workers:
            worker.start()
    except (OSError, PermissionError) as error:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        raise WorkerStartError(f"cannot start shard processes: {error}") from error

    pending: List[List[tuple]] = [[] for _ in range(partitions)]
    blocks = 0
    events_processed = 0

    def safe_put(index: int, item) -> None:
        """Blocking put that cannot hang on a dead worker's full queue."""
        nonlocal blocks
        try:
            in_queues[index].put_nowait(item)
            return
        except queue_module.Full:
            blocks += 1
        while True:
            try:
                in_queues[index].put(item, timeout=_POLL_INTERVAL)
                return
            except queue_module.Full:
                if not workers[index].is_alive():
                    raise RuntimeError(
                        f"stream shard {index} died with a full input queue"
                    ) from None

    def flush(index: int) -> None:
        if not pending[index]:
            return
        batch = pending[index]
        pending[index] = []
        safe_put(index, batch)

    try:
        for tagged in merged:
            element = tagged.element
            if isinstance(element, StreamEvent):
                events_processed += 1
                if tagged.side == LEFT:
                    key = theta.left_key(element.tuple)
                    # Stamp ingestion before the element can queue anywhere,
                    # so emit latency includes serialization + queueing.
                    tagged = Tagged(tagged.side, element, time.perf_counter())
                else:
                    key = theta.right_key(element.tuple)
                index = _route(key, partitions)
                pending[index].append(encode_tagged(tagged))
                if len(pending[index]) >= micro_batch_size:
                    flush(index)
            elif isinstance(element, Watermark):
                code = encode_tagged(tagged)
                for index in range(partitions):
                    pending[index].append(code)
                    # Watermarks count toward the micro-batch budget too:
                    # a partition receiving few events must still ship its
                    # broadcast watermarks (bounding pending growth and
                    # letting an otherwise-idle worker finalize windows).
                    if len(pending[index]) >= micro_batch_size:
                        flush(index)
        for index in range(partitions):
            flush(index)
            safe_put(index, None)

        results: dict[int, tuple] = {}
        grace_polls = 5
        while len(results) < partitions:
            try:
                message = out_queue.get(timeout=_POLL_INTERVAL)
            except queue_module.Empty:
                missing = sorted(set(range(partitions)) - set(results))
                if any(workers[index].is_alive() for index in missing):
                    # Slow workers (large final window drains) are waited on
                    # for as long as they live — no arbitrary deadline.
                    continue
                # Every missing worker has exited; its result may still be in
                # flight through the queue's feeder pipe, so poll a few more
                # times before declaring it lost.
                grace_polls -= 1
                if grace_polls <= 0:
                    raise RuntimeError(
                        f"stream shards {missing} exited without a result"
                    ) from None
                continue
            results[message[0]] = message
    finally:
        for worker in workers:
            worker.join(timeout=5.0)
        for worker in workers:
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()

    outputs: List[TPTuple] = []
    latencies: List[float] = []
    late_dropped = 0
    for index in range(partitions):
        _index, status, payload, shard_latencies, late = results[index]
        if status != "ok":
            raise RuntimeError(f"stream shard {index} failed:\n{payload}")
        outputs.extend(decode_tuples(payload))
        latencies.extend(shard_latencies)
        late_dropped += late
    return ProcessRunOutcome(
        outputs=outputs,
        emit_latencies=latencies,
        late_dropped=late_dropped,
        events_processed=events_processed,
        backpressure_blocks=blocks,
    )


def _route(key, partitions: int) -> int:
    return stable_hash(key) % partitions
