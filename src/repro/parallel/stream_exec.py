"""Process-sharded execution of continuous TP queries.

The thread-based parallel path of :class:`repro.stream.StreamQuery` shares
one interpreter, so the GIL caps CPU-bound lineage work at one core.  This
module ports the identical topology — a router hash-partitioning events by
join key, watermarks broadcast to every partition, bounded buffers providing
backpressure — onto ``multiprocessing`` workers:

* each partition is a separate OS process running its own
  :class:`~repro.stream.operators.ContinuousJoinBase` over its own shard of
  the key space (shared-nothing: no state crosses partitions, ever);
* the router ships compactly serialized micro-batches through a bounded
  ``multiprocessing.Queue`` per worker, so a slow worker backpressures the
  router exactly like the in-process :class:`BoundedBuffer` does;
* when all inputs are drained the router sends a close sentinel, workers
  finalize their remaining windows and return their serialized outputs,
  per-tuple emit latencies and late-drop counters in one result message.

Emit latencies remain comparable across the process boundary because
``time.perf_counter`` reads ``CLOCK_MONOTONIC``, which is system-wide on the
platforms with ``fork``; the router stamps ingestion before an element can
sit in a queue, so latencies include cross-process queueing time.
"""

from __future__ import annotations

import queue as queue_module
import time
import traceback
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..relation import Schema, ThetaCondition, TPTuple
from ..stream.elements import LEFT, RIGHT, StreamEvent, Tagged, Watermark
from ..stream.operators import continuous_join
from .batch import canonical_order
from .plan import stable_hash
from .pool import preferred_context
from .serialize import (
    decode_tagged,
    decode_tuples,
    encode_tagged,
    encode_tuples,
    events_from_probabilities,
)

#: Poll interval (seconds) for queue operations that must watch worker
#: liveness.  Slow-but-alive workers are waited on indefinitely; only a dead
#: worker aborts the run.
_POLL_INTERVAL = 1.0


class WorkerStartError(RuntimeError):
    """Worker processes could not be started (sandbox without fork/spawn).

    Raised strictly *before* any input element is consumed, so callers can
    fall back to another backend over the same untouched element iterator —
    :class:`repro.stream.StreamQuery` degrades to the thread backend.
    """


@dataclass(frozen=True)
class StreamShardSpec:
    """Everything a worker process needs to rebuild its continuous join.

    ``event_probabilities`` ships the marginal probabilities of the base
    events when the query materializes probabilities inline: workers rebuild
    an event space from it and compute output probabilities with their
    maintainer-owned per-key computers.  ``None`` leaves probabilities unset
    (the caller computes them later, the default).
    """

    kind: str
    left_attributes: tuple
    right_attributes: tuple
    on: tuple
    left_name: str = "r"
    right_name: str = "s"
    event_probabilities: Optional[dict] = None

    def build_join(self):
        """Instantiate the continuous join this spec describes."""
        materialize = self.event_probabilities is not None
        return continuous_join(
            self.kind,
            Schema(tuple(self.left_attributes)),
            Schema(tuple(self.right_attributes)),
            self.on,
            left_name=self.left_name,
            right_name=self.right_name,
            events=events_from_probabilities(self.event_probabilities)
            if materialize
            else None,
            materialize_probabilities=materialize,
        )


@dataclass
class ProcessRunOutcome:
    """What the router hands back to :class:`StreamQuery` after a run."""

    outputs: List[TPTuple]
    emit_latencies: List[float]
    late_dropped: int
    events_processed: int
    backpressure_blocks: int


def _stream_worker_main(index: int, spec: StreamShardSpec, in_queue, out_queue) -> None:
    """Worker process entry point: drain micro-batches, finalize, report."""
    try:
        join = spec.build_join()
        outputs: List[TPTuple] = []
        while True:
            batch = in_queue.get()
            if batch is None:
                break
            for code in batch:
                outputs.extend(join.process(decode_tagged(code)))
        outputs.extend(join.close())
        late = (
            join.maintainer.stats.late_positives_dropped
            + join.maintainer.stats.late_negatives_dropped
        )
        out_queue.put(
            (index, "ok", encode_tuples(outputs), list(join.emit_latencies), late)
        )
    except BaseException:  # noqa: BLE001 - marshalled to the router
        out_queue.put((index, "error", traceback.format_exc(), None, None))


def run_process_partitions(
    spec: StreamShardSpec,
    merged: Iterable[Tagged],
    theta: ThetaCondition,
    partitions: int,
    micro_batch_size: int = 64,
    buffer_capacity: int = 1024,
) -> ProcessRunOutcome:
    """Route a merged element sequence through ``partitions`` worker processes.

    Mirrors the thread runtime's contract: events are hash-routed by join
    key, watermarks are broadcast, per-partition element order is preserved,
    and bounded queues backpressure the router.  Outputs are concatenated in
    partition-index order — deterministic for a fixed partition count.
    """
    if partitions <= 1:
        raise ValueError("run_process_partitions requires at least two partitions")
    context = preferred_context()
    # Queue capacity is measured in micro-batches; keep the same element
    # budget the thread path's BoundedBuffer(capacity) provides.
    queue_batches = max(2, buffer_capacity // max(1, micro_batch_size))
    workers: List = []
    try:
        # Queue construction can itself fail in sandboxes (sem_open denied),
        # so it sits under the same fallback guard as process start-up.
        in_queues = [context.Queue(maxsize=queue_batches) for _ in range(partitions)]
        out_queue = context.Queue()
        workers = [
            context.Process(
                target=_stream_worker_main,
                args=(index, spec, in_queues[index], out_queue),
                name=f"stream-shard-{index}",
                daemon=True,
            )
            for index in range(partitions)
        ]
        for worker in workers:
            worker.start()
    except (OSError, PermissionError) as error:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        raise WorkerStartError(f"cannot start shard processes: {error}") from error

    pending: List[List[tuple]] = [[] for _ in range(partitions)]
    blocks = 0
    events_processed = 0
    # Right/full outer joins treat right events as positives too (mirrored
    # maintainer), so both sides get an ingestion stamp for emit latency.
    stamp_right = spec.kind in ("right_outer", "full_outer")

    def safe_put(index: int, item) -> None:
        """Blocking put that cannot hang on a dead worker's full queue."""
        nonlocal blocks
        try:
            in_queues[index].put_nowait(item)
            return
        except queue_module.Full:
            blocks += 1
        while True:
            try:
                in_queues[index].put(item, timeout=_POLL_INTERVAL)
                return
            except queue_module.Full:
                if not workers[index].is_alive():
                    raise RuntimeError(
                        f"stream shard {index} died with a full input queue"
                    ) from None

    def flush(index: int) -> None:
        if not pending[index]:
            return
        batch = pending[index]
        pending[index] = []
        safe_put(index, batch)

    try:
        for tagged in merged:
            element = tagged.element
            if isinstance(element, StreamEvent):
                events_processed += 1
                if tagged.side == LEFT:
                    key = theta.left_key(element.tuple)
                    # Stamp ingestion before the element can queue anywhere,
                    # so emit latency includes serialization + queueing.
                    tagged = Tagged(tagged.side, element, time.perf_counter())
                else:
                    key = theta.right_key(element.tuple)
                    if stamp_right:
                        tagged = Tagged(tagged.side, element, time.perf_counter())
                index = _route(key, partitions)
                pending[index].append(encode_tagged(tagged))
                if len(pending[index]) >= micro_batch_size:
                    flush(index)
            elif isinstance(element, Watermark):
                code = encode_tagged(tagged)
                for index in range(partitions):
                    pending[index].append(code)
                    # Watermarks count toward the micro-batch budget too:
                    # a partition receiving few events must still ship its
                    # broadcast watermarks (bounding pending growth and
                    # letting an otherwise-idle worker finalize windows).
                    if len(pending[index]) >= micro_batch_size:
                        flush(index)
        for index in range(partitions):
            flush(index)
            safe_put(index, None)

        results: dict[int, tuple] = {}
        grace_polls = 5
        while len(results) < partitions:
            try:
                message = out_queue.get(timeout=_POLL_INTERVAL)
            except queue_module.Empty:
                missing = sorted(set(range(partitions)) - set(results))
                if any(workers[index].is_alive() for index in missing):
                    # Slow workers (large final window drains) are waited on
                    # for as long as they live — no arbitrary deadline.
                    continue
                # Every missing worker has exited; its result may still be in
                # flight through the queue's feeder pipe, so poll a few more
                # times before declaring it lost.
                grace_polls -= 1
                if grace_polls <= 0:
                    raise RuntimeError(
                        f"stream shards {missing} exited without a result"
                    ) from None
                continue
            results[message[0]] = message
    finally:
        for worker in workers:
            worker.join(timeout=5.0)
        for worker in workers:
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()

    outputs: List[TPTuple] = []
    latencies: List[float] = []
    late_dropped = 0
    for index in range(partitions):
        _index, status, payload, shard_latencies, late = results[index]
        if status != "ok":
            raise RuntimeError(f"stream shard {index} failed:\n{payload}")
        outputs.extend(decode_tuples(payload))
        latencies.extend(shard_latencies)
        late_dropped += late
    return ProcessRunOutcome(
        outputs=outputs,
        emit_latencies=latencies,
        late_dropped=late_dropped,
        events_processed=events_processed,
        backpressure_blocks=blocks,
    )


def _route(key, partitions: int) -> int:
    return stable_hash(key) % partitions


# --------------------------------------------------------------------------- #
# dataflow graphs: worker-per-(node, partition) pipelined execution
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DataflowNodeSpec:
    """Everything a worker process needs to run one dataflow node partition.

    One spec — and one OS process — exists per *(node, partition)*: a node
    with ``NodeSpec.partitions = K`` fans out into K shared-nothing workers
    over disjoint slices of its key space, multiplying the pipeline axis
    (worker per chained node) by the partition axis.

    ``downstream`` lists ``(first worker index, consumer partitions, side,
    key indices)`` routing entries: revisions go to ``first +
    stable_hash(key) % partitions`` (the key is the output fact projected on
    ``key indices`` — the consumer θ's attributes for that side), watermarks
    are broadcast to all of the consumer's partitions.  ``producers`` is the
    number of incoming FIFO channels (parent source edges plus upstream
    partition workers) — the count of ``None`` done sentinels to await
    before closing.  ``left_channels`` / ``right_channels`` name those
    channels so the worker can min-merge per-channel watermarks (the stage
    output watermark = min over the upstream partitions).
    """

    index: int
    node_index: int
    name: str
    kind: str
    partition: int
    partitions: int
    left_attributes: tuple
    right_attributes: tuple
    on: tuple
    left_name: str
    right_name: str
    downstream: tuple
    producers: int
    left_channels: tuple = ()
    right_channels: tuple = ()
    early_emit: bool = False
    event_probabilities: Optional[dict] = None

    def build_join(self):
        """Instantiate the retractable join this spec describes."""
        from ..dataflow.operators import RevisionJoin

        materialize = self.event_probabilities is not None
        return RevisionJoin(
            self.kind,
            Schema(tuple(self.left_attributes)),
            Schema(tuple(self.right_attributes)),
            self.on,
            left_name=self.left_name,
            right_name=self.right_name,
            early_emit=self.early_emit,
            events=events_from_probabilities(self.event_probabilities)
            if materialize
            else None,
            materialize_probabilities=materialize,
        )


def _graph_worker_main(
    spec: DataflowNodeSpec, worker_queues, out_queue, micro_batch_size: int, abort
) -> None:
    """Dataflow partition worker: drain revisions, publish downstream, report."""
    from ..dataflow.executor import ChannelWatermarks
    from .serialize import decode_revision_tagged, encode_revision_tagged

    try:
        join = spec.build_join()
        trackers = {
            LEFT: ChannelWatermarks(spec.left_channels),
            RIGHT: ChannelWatermarks(spec.right_channels),
        }
        in_queue = worker_queues[spec.index]
        pending: dict[int, list] = {}
        channel = ("node", spec.node_index, spec.partition)

        def guarded_put(target: int, item) -> None:
            # A sibling worker may have died with a full queue nobody drains;
            # the parent sets `abort` when it learns of the failure, which
            # is this worker's signal to stop instead of blocking forever.
            while True:
                try:
                    worker_queues[target].put(item, timeout=_POLL_INTERVAL)
                    return
                except queue_module.Full:
                    if abort.is_set():
                        raise RuntimeError(
                            "run aborted while publishing downstream"
                        ) from None

        def enqueue(target: int, entry) -> None:
            pending.setdefault(target, []).append(entry)
            if len(pending[target]) >= micro_batch_size:
                guarded_put(target, pending.pop(target))

        def route(elements) -> None:
            for element in elements:
                for first, consumer_parts, side, key_indices in spec.downstream:
                    if isinstance(element, Watermark):
                        code = encode_revision_tagged(Tagged(side, element))
                        for offset in range(consumer_parts):
                            enqueue(first + offset, (channel, code))
                    else:
                        code = encode_revision_tagged(Tagged(side, element))
                        if consumer_parts > 1:
                            key = tuple(
                                element.tuple.fact[i] for i in key_indices
                            )
                            offset = _route(key, consumer_parts)
                        else:
                            offset = 0
                        enqueue(first + offset, (None, code))

        def flush() -> None:
            for target in list(pending):
                guarded_put(target, pending.pop(target))

        remaining = spec.producers
        while remaining > 0:
            message = in_queue.get()
            if message is None:
                remaining -= 1
                continue
            for in_channel, code in message:
                tagged = decode_revision_tagged(code)
                element = tagged.element
                if isinstance(element, Watermark):
                    merged = trackers[tagged.side].update(in_channel, element.value)
                    if merged is None:
                        continue
                    tagged = Tagged(tagged.side, Watermark(merged), tagged.ingest_clock)
                route(join.process(tagged))
            flush()
        route(join.close())
        flush()
        # One done sentinel per (edge × consumer partition), matching the
        # producer counts in graph_node_specs (duplicate edges to one
        # consumer — a self-join shape — each carry their own sentinel).
        for first, consumer_parts, _side, _key_indices in spec.downstream:
            for offset in range(consumer_parts):
                guarded_put(first + offset, None)
        stats = join.stats
        out_queue.put(
            (
                spec.index,
                "ok",
                encode_tuples(join.settled_outputs.values()),
                (
                    stats.emits,
                    stats.retracts,
                    stats.refines,
                    stats.groups_published_early,
                    stats.groups_settled,
                    stats.inputs_retracted,
                ),
                list(join.emit_latencies),
                list(join.emit_event_lags),
            )
        )
    except BaseException:  # noqa: BLE001 - marshalled to the parent
        out_queue.put((spec.index, "error", traceback.format_exc(), None, None, None))


def graph_node_specs(graph, config) -> List[DataflowNodeSpec]:
    """Compile a :class:`~repro.dataflow.DataflowGraph` into worker specs.

    One spec per (node, partition); worker indices are contiguous per node
    (``first_worker[i] .. first_worker[i] + partitions_i - 1``), so routing
    entries only need the first index and the partition count.
    """
    from ..dataflow.executor import channel_topology, downstream_table

    node_index = {name: index for index, name in enumerate(graph.node_names)}
    parts = graph.partition_counts
    first_worker: List[int] = []
    total = 0
    for count in parts:
        first_worker.append(total)
        total += count
    event_probabilities = None
    if getattr(config, "materialize_probabilities", False):
        events = graph.merged_events()
        event_probabilities = {
            name: events.probability(name) for name in events.names()
        }
    # Producer channels per node: one per incoming source edge, plus one per
    # upstream partition worker per edge (every partition of the consumer
    # receives broadcast watermarks from each of them).
    producers = [0] * len(graph.nodes)
    for source in graph.source_names:
        for consumer, _side in graph.consumers_of(source):
            producers[node_index[consumer]] += 1
    downstream_nodes = [tuple(edges) for edges in downstream_table(graph, node_index)]
    for index, edges in enumerate(downstream_nodes):
        for target, _side in edges:
            producers[target] += parts[index]
    channels = channel_topology(graph, node_index)
    specs = []
    for index, spec in enumerate(graph.nodes):
        routing = []
        for target, side in downstream_nodes[index]:
            consumer = graph.nodes[target]
            consumer_side_schema = graph.schema_of(
                consumer.left if side == LEFT else consumer.right
            )
            key_indices = tuple(
                consumer_side_schema.index(pair[0] if side == LEFT else pair[1])
                for pair in consumer.on
            )
            routing.append((first_worker[target], parts[target], side, key_indices))
        for partition in range(spec.partitions):
            specs.append(
                DataflowNodeSpec(
                    index=first_worker[index] + partition,
                    node_index=index,
                    name=spec.name,
                    kind=spec.kind,
                    partition=partition,
                    partitions=spec.partitions,
                    left_attributes=graph.schema_of(spec.left).attributes,
                    right_attributes=graph.schema_of(spec.right).attributes,
                    on=spec.on,
                    left_name=spec.left,
                    right_name=spec.right,
                    downstream=tuple(routing),
                    producers=producers[index],
                    left_channels=tuple(channels[index][LEFT]),
                    right_channels=tuple(channels[index][RIGHT]),
                    early_emit=getattr(config, "early_emit", False),
                    event_probabilities=event_probabilities,
                )
            )
    return specs


def run_graph_processes(graph, config, merge_seed=None):
    """Run a dataflow graph with one OS process per node partition.

    The same two-axis topology as the thread backend — bounded queues
    between stages provide backpressure, done sentinels implement the
    multi-producer close protocol, revisions are key-routed to the
    consumer's partitions and watermarks broadcast and min-merged per
    channel — with elements crossing process boundaries through the compact
    revision codec.  Raises :class:`WorkerStartError` (strictly before
    consuming any source element) when processes cannot start, so callers
    can fall back.
    """
    from ..dataflow.executor import GraphRunOutcome, merge_edges, source_edges
    from ..dataflow.operators import RevisionJoinStats
    from ..stream.operators import theta_from_pairs
    from .serialize import decode_tuples as _decode_tuples

    specs = graph_node_specs(graph, config)
    node_index = {name: index for index, name in enumerate(graph.node_names)}
    parts = graph.partition_counts
    first_worker: List[int] = []
    total = 0
    for count in parts:
        first_worker.append(total)
        total += count
    thetas = [
        theta_from_pairs(
            graph.schema_of(spec.left), graph.schema_of(spec.right), spec.on
        )
        for spec in graph.nodes
    ]
    micro_batch_size = getattr(config, "micro_batch_size", 64)
    buffer_capacity = getattr(config, "buffer_capacity", 1024)
    queue_batches = max(2, buffer_capacity // max(1, micro_batch_size))
    context = preferred_context()
    workers: List = []
    try:
        worker_queues = [context.Queue(maxsize=queue_batches) for _ in specs]
        out_queue = context.Queue()
        abort = context.Event()
        workers = [
            context.Process(
                target=_graph_worker_main,
                args=(spec, worker_queues, out_queue, micro_batch_size, abort),
                name=f"dataflow-node-{spec.node_index}-p{spec.partition}",
                daemon=True,
            )
            for spec in specs
        ]
        for worker in workers:
            worker.start()
    except (OSError, PermissionError) as error:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        raise WorkerStartError(f"cannot start dataflow processes: {error}") from error

    edges = list(source_edges(graph, node_index))
    pending: List[List[tuple]] = [[] for _ in specs]
    events_processed = 0
    blocks = 0
    results: dict[int, tuple] = {}

    def take_result(message) -> None:
        """Record one worker message; a failure aborts the whole run."""
        if message[1] != "ok":
            abort.set()
            raise RuntimeError(f"dataflow worker {message[0]} failed:\n{message[2]}")
        results[message[0]] = message

    def drain_results() -> None:
        while True:
            try:
                take_result(out_queue.get_nowait())
            except queue_module.Empty:
                return

    def safe_put(index: int, item) -> None:
        nonlocal blocks
        try:
            worker_queues[index].put_nowait(item)
            return
        except queue_module.Full:
            blocks += 1
        while True:
            try:
                worker_queues[index].put(item, timeout=_POLL_INTERVAL)
                return
            except queue_module.Full:
                # A failed sibling worker can make the whole pipeline stall
                # while this one stays alive: surface marshalled errors
                # instead of spinning on liveness alone.
                drain_results()
                if not workers[index].is_alive():
                    raise RuntimeError(
                        f"dataflow worker {index} died with a full input queue"
                    ) from None

    def flush(index: int) -> None:
        if pending[index]:
            batch = pending[index]
            pending[index] = []
            safe_put(index, batch)

    def enqueue(index: int, entry) -> None:
        pending[index].append(entry)
        if len(pending[index]) >= micro_batch_size:
            flush(index)

    try:
        for edge, target, side, element in merge_edges(edges, merge_seed):
            if isinstance(element, StreamEvent):
                events_processed += 1
                clock = time.perf_counter()
                theta = thetas[target]
                if parts[target] > 1:
                    key = (
                        theta.left_key(element.tuple)
                        if side == LEFT
                        else theta.right_key(element.tuple)
                    )
                    partition = _route(key, parts[target])
                else:
                    partition = 0
                enqueue(
                    first_worker[target] + partition,
                    (None, encode_tagged(Tagged(side, element, clock))),
                )
            else:
                code = encode_tagged(Tagged(side, element))
                for partition in range(parts[target]):
                    enqueue(first_worker[target] + partition, (("src", edge), code))
        for target, _side, _iterator in edges:
            for partition in range(parts[target]):
                index = first_worker[target] + partition
                flush(index)
                safe_put(index, None)
        for index in range(len(specs)):
            flush(index)

        grace_polls = 5
        while len(results) < len(specs):
            try:
                message = out_queue.get(timeout=_POLL_INTERVAL)
            except queue_module.Empty:
                missing = sorted(set(range(len(specs))) - set(results))
                if any(workers[index].is_alive() for index in missing):
                    continue
                grace_polls -= 1
                if grace_polls <= 0:
                    raise RuntimeError(
                        f"dataflow workers {missing} exited without a result"
                    ) from None
                continue
            take_result(message)
    except BaseException:
        # Unblock any worker parked on a full queue of a dead consumer.
        abort.set()
        raise
    finally:
        for worker in workers:
            worker.join(timeout=5.0)
        for worker in workers:
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()

    settled = {}
    stats = {}
    latencies = {}
    lags = {}
    for node, spec in enumerate(graph.nodes):
        merged: List = []
        node_stats: List[RevisionJoinStats] = []
        node_latencies: List[float] = []
        node_lags: List[float] = []
        for partition in range(parts[node]):
            message = results[first_worker[node] + partition]
            _index, _status, tuple_codes, stat_values, part_latencies, part_lags = message
            merged.extend(_decode_tuples(tuple_codes))
            node_stats.append(RevisionJoinStats(*stat_values))
            node_latencies.extend(part_latencies)
            node_lags.extend(part_lags)
        # Canonical order-stable merge: key-disjoint partition outputs sort
        # into the same sequence any partition count (or backend) produces.
        settled[spec.name] = canonical_order(merged)
        stats[spec.name] = RevisionJoinStats.merged(node_stats)
        latencies[spec.name] = node_latencies
        lags[spec.name] = node_lags
    return GraphRunOutcome(
        settled=settled,
        stats=stats,
        emit_latencies=latencies,
        emit_event_lags=lags,
        events_processed=events_processed,
        backpressure_blocks=blocks,
        backend="processes",
    )
