"""Shared-nothing parallel execution of batch TP set operations.

:func:`parallel_tp_join` evaluates any of the paper's TP joins (Table II) by

1. **planning** — choosing a partition count from the state-size cost model
   (or honouring an explicit one) and hash-partitioning both inputs on the
   equi-join key (:mod:`repro.parallel.plan`);
2. **executing** — shipping each shard, compactly serialized with only the
   slice of the event space its lineages mention, to a worker process that
   runs the unchanged window pipeline (overlap join → LAWAU → LAWAN →
   lineage → probability) on its shard alone (:mod:`repro.parallel.pool`);
3. **merging** — decoding shard outputs and producing them in the canonical
   deterministic order, so the result is identical tuple-for-tuple across
   any partition count, including the serial fallback.

Correctness rests on the shared-nothing property of equi-θ TP joins: every
window of a tuple is derived exclusively from tuples with the same join key,
so key-disjoint shards never interact.  Non-equi conditions (and the
always-true θ, whose single key defeats partitioning) run serially.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.joins import (
    tp_anti_join,
    tp_full_outer_join,
    tp_inner_join,
    tp_left_outer_join,
    tp_right_outer_join,
)
from ..relation import Schema, TPRelation, TPTuple, theta_or_true
from .plan import (
    ParallelConfig,
    choose_partitions,
    estimate_join_state,
    partition_pair,
    shardable,
)
from .pool import imap_tasks
from .serialize import (
    decode_tuples,
    encode_tuples,
    events_from_probabilities,
    restricted_probabilities,
)

#: Join-kind name → batch join function (the paper's Table II operators).
BATCH_JOINS: Dict[str, Callable] = {
    "anti": tp_anti_join,
    "left_outer": tp_left_outer_join,
    "right_outer": tp_right_outer_join,
    "full_outer": tp_full_outer_join,
    "inner": tp_inner_join,
}


@dataclass(frozen=True)
class ParallelJoinResult:
    """A parallel join's output relation plus run metadata."""

    relation: TPRelation
    workers: int
    shard_input_sizes: tuple[tuple[int, int], ...]
    shard_output_sizes: tuple[int, ...]
    elapsed_seconds: float

    @property
    def ran_parallel(self) -> bool:
        """Whether the run actually fanned out to more than one shard."""
        return self.workers > 1


def canonical_order(tuples: Sequence[TPTuple]) -> List[TPTuple]:
    """Sort tuples into the canonical deterministic output order.

    The order is total over (fact, interval, lineage text), so any two runs
    producing the same tuple *set* produce the same tuple *sequence* — the
    order-stable merge contract of the subsystem.
    """
    return sorted(tuples, key=TPTuple.key)


def _shard_worker(task: tuple) -> List[tuple]:
    """Execute one shard's join in a worker process (module-level: picklable)."""
    (
        kind,
        left_attributes,
        right_attributes,
        left_name,
        right_name,
        on,
        left_codes,
        right_codes,
        probabilities,
        compute_probabilities,
    ) = task
    events = events_from_probabilities(probabilities)
    left = TPRelation(
        Schema(tuple(left_attributes)),
        decode_tuples(left_codes),
        events,
        name=left_name,
        check_constraint=False,
    )
    right = TPRelation(
        Schema(tuple(right_attributes)),
        decode_tuples(right_codes),
        events,
        name=right_name,
        check_constraint=False,
    )
    theta = theta_or_true(left.schema, right.schema, on)
    result = BATCH_JOINS[kind](
        left, right, theta, compute_probabilities=compute_probabilities
    )
    return encode_tuples(result)


def plan_workers(
    kind: str,
    left: TPRelation,
    right: TPRelation,
    on: Sequence[tuple[str, str]],
    config: ParallelConfig | None = None,
) -> int:
    """Choose the partition count for a join via the state-size cost model."""
    theta = theta_or_true(left.schema, right.schema, on)
    if not shardable(theta):
        return 1
    key_attribute = on[0][1]
    distinct = len(set(right.attribute_values(key_attribute))) if len(right) else 1
    state = estimate_join_state(len(left), len(right), distinct)
    return choose_partitions(state, len(left), config, distinct_keys=distinct)


def parallel_tp_join(
    kind: str,
    left: TPRelation,
    right: TPRelation,
    on: Sequence[tuple[str, str]] = (),
    workers: Optional[int] = None,
    config: ParallelConfig | None = None,
    compute_probabilities: bool = True,
) -> ParallelJoinResult:
    """Evaluate a TP join across shared-nothing worker processes.

    Args:
        kind: one of ``anti`` / ``left_outer`` / ``right_outer`` /
            ``full_outer`` / ``inner``.
        left, right: the input relations (``left`` is the positive relation
            for anti and left outer joins, as in the batch operators).
        on: ``(left_attr, right_attr)`` equality pairs; an empty θ means a
            pure temporal join, which cannot be sharded and runs serially.
        workers: explicit partition count; ``None`` lets the state-size
            cost model decide (see :func:`plan_workers`).
        config: cost-model knobs used when ``workers`` is ``None``.
        compute_probabilities: materialise output probabilities inside the
            workers (the CPU-bound part that scales with cores).

    Returns:
        :class:`ParallelJoinResult` whose relation holds the canonical-order
        output over the merged event space of both inputs.
    """
    if kind not in BATCH_JOINS:
        raise ValueError(f"unknown join kind {kind!r}; supported: {sorted(BATCH_JOINS)}")
    theta = theta_or_true(left.schema, right.schema, tuple(on))
    if workers is None:
        workers = plan_workers(kind, left, right, tuple(on), config)
    if workers <= 0:
        raise ValueError("workers must be positive")
    if workers > 1 and not shardable(theta):
        workers = 1

    started = time.perf_counter()
    if workers == 1:
        serial = BATCH_JOINS[kind](
            left, right, theta, compute_probabilities=compute_probabilities
        )
        relation = TPRelation(
            serial.schema,
            canonical_order(serial.tuples),
            serial.events,
            name=serial.name,
            check_constraint=False,
        )
        return ParallelJoinResult(
            relation=relation,
            workers=1,
            shard_input_sizes=((len(left), len(right)),),
            shard_output_sizes=(len(relation),),
            elapsed_seconds=time.perf_counter() - started,
        )

    left_shards, right_shards = partition_pair(
        left.tuples, right.tuples, theta, workers
    )
    events = left.events.merge(right.events)
    left_name = left.name or "r"
    right_name = right.name or "s"
    tasks = []
    for left_shard, right_shard in zip(left_shards, right_shards):
        tasks.append(
            (
                kind,
                left.schema.attributes,
                right.schema.attributes,
                left_name,
                right_name,
                tuple(on),
                encode_tuples(left_shard),
                encode_tuples(right_shard),
                restricted_probabilities(events, [*left_shard, *right_shard]),
                compute_probabilities,
            )
        )
    # imap (not map) so each shard's output is decoded while later shards
    # are still computing — the decode cost hides behind worker compute.
    merged: List[TPTuple] = []
    shard_output_sizes: List[int] = []
    for codes in imap_tasks(_shard_worker, tasks, workers):
        shard_output_sizes.append(len(codes))
        merged.extend(decode_tuples(codes))
    schema = _output_schema(kind, left, right, right_name)
    relation = TPRelation(
        schema,
        canonical_order(merged),
        events,
        name=f"{left_name} {kind} {right_name} [parallel n={workers}]",
        check_constraint=False,
    )
    return ParallelJoinResult(
        relation=relation,
        workers=workers,
        shard_input_sizes=tuple(
            (len(ls), len(rs)) for ls, rs in zip(left_shards, right_shards)
        ),
        shard_output_sizes=tuple(shard_output_sizes),
        elapsed_seconds=time.perf_counter() - started,
    )


def _output_schema(
    kind: str, left: TPRelation, right: TPRelation, right_name: str
) -> Schema:
    if kind == "anti":
        return left.schema
    from ..core.concat import combined_output_schema

    return combined_output_schema(left.schema, right.schema, right_name)
