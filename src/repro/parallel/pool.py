"""Process worker-pool runtime.

A thin, dependency-free wrapper around :mod:`multiprocessing` tailored to
shard execution:

* **fork when available, spawn otherwise** — fork (Linux) makes workers
  inherit the loaded modules for free; spawn (macOS/Windows default) works
  because every worker entry point in this package is a module-level
  function operating on picklable task payloads.
* **graceful degradation** — ``workers <= 1``, a single shard, or an
  environment where processes cannot start (sandboxes without ``fork``)
  all fall back to running the tasks inline in the calling process, so the
  parallel code path is always *correct*, merely not always parallel.
* **deterministic result order** — results come back in task order no
  matter which worker finished first (the order-stable half of the
  subsystem's order-stable merge).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, TypeVar

# The context/CPU helpers moved to the runtime layer with the rest of the
# process plumbing; re-exported here because shard callers import them from
# this module.
from ..runtime.transport import available_cpus, preferred_context

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

__all__ = ["available_cpus", "imap_tasks", "preferred_context", "run_tasks"]


def run_tasks(
    worker: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    workers: int,
) -> List[ResultT]:
    """Run ``worker`` over ``tasks`` on up to ``workers`` processes.

    ``worker`` must be a module-level function and tasks/results must be
    picklable.  Results are returned in task order.  Falls back to inline
    execution when parallelism cannot help (one worker, one task) or when
    worker processes cannot be started at all.
    """
    return list(imap_tasks(worker, tasks, workers))


def imap_tasks(
    worker: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    workers: int,
) -> Iterator[ResultT]:
    """Like :func:`run_tasks`, but yield results as tasks complete, in order.

    The caller overlaps its own post-processing (decoding, merging) of shard
    ``i`` with the still-running computation of shards ``i+1..n`` — with
    evenly sized shards this hides most of the result-side serialization
    cost behind worker compute.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if workers == 1 or len(tasks) <= 1:
        for task in tasks:
            yield worker(task)
        return
    context = preferred_context()
    try:
        pool = context.Pool(processes=min(workers, len(tasks)))
    except (OSError, PermissionError):  # pragma: no cover - sandboxed fallback
        for task in tasks:
            yield worker(task)
        return
    with pool:
        yield from pool.imap(worker, tasks)
