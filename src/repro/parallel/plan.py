"""Shard planning: hash partitioning and the state-size cost model.

A TP join with an equi-θ decomposes perfectly by join key: every window of a
positive tuple is derived from tuples sharing its key, so partitioning both
inputs by the same hash of the key yields shards whose joins are mutually
independent — the shared-nothing property the process workers rely on.
Watermarks are the one broadcast element: they carry no key and advance
event time in *every* shard.

Partition counts come from the state-size cost model the ROADMAP names: the
work a shard performs is proportional to the positive tuples it holds open
times the θ-matching negative tuples each one meets (``open positives ×
matches``).  :func:`choose_partitions` turns that estimate into a worker
count, refusing to shard work too small to amortise process start-up and
serialization.

Hashing uses :func:`stable_hash` (CRC-32 over the key's repr), not Python's
built-in ``hash``: the built-in is salted per process (``PYTHONHASHSEED``),
and shard assignments must be reproducible across runs and identical between
the router and any re-run that checks it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence, TypeVar

from ..relation import (
    EquiJoinCondition,
    ThetaCondition,
    TPTuple,
    TrueCondition,
    stable_key_hash,
)
from ..runtime.placement import Placement

T = TypeVar("T")

#: Partition-count ceiling applied when a config does not set its own.
DEFAULT_MAX_WORKERS = 4

#: Transports a :class:`ParallelConfig` may pin for stream/dataflow plans.
PLANNER_TRANSPORTS = ("threads", "processes", "sockets")


@dataclass(frozen=True)
class ParallelConfig:
    """Policy knobs of the shard planner.

    Attributes:
        max_workers: hard ceiling on the partition count.
        state_per_worker: target state-size units (open positives × matches)
            per worker; the planner adds workers until shards fall under it.
        min_tuples: inputs smaller than this (left side) always run serially
            — process start-up and shard serialization would dominate.
        transport: **deprecated** — runtime transport continuous/dataflow
            plans execute on.  The knob moved to
            :class:`repro.ExecutionOptions`; passing it here still works
            but emits a :class:`DeprecationWarning`.
        placement: **deprecated** — worker index → ``host:port`` map for
            the socket transport; moved to ``ExecutionOptions`` likewise.
    """

    max_workers: int = DEFAULT_MAX_WORKERS
    state_per_worker: float = 20_000.0
    min_tuples: int = 512
    transport: Optional[str] = None
    placement: Optional[Placement] = None

    def __post_init__(self) -> None:
        if self.max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if self.state_per_worker <= 0:
            raise ValueError("state_per_worker must be positive")
        if self.transport is not None and self.transport not in PLANNER_TRANSPORTS:
            raise ValueError(
                f"transport must be one of {PLANNER_TRANSPORTS}, got {self.transport!r}"
            )
        if self.transport is not None or self.placement is not None:
            # Imported here, not at module top: repro.options is a layer
            # above the parallel planner.
            from ..options import deprecated_config_call

            deprecated_config_call(
                "ParallelConfig(transport=/placement=)",
                "those execution knobs moved to repro.ExecutionOptions "
                "(Engine(options=...)); ParallelConfig keeps only the "
                "planner policy knobs",
                stacklevel=4,
            )


#: The shared stable key hash (see :func:`repro.relation.stable_key_hash`);
#: re-exported here because shard routing is where it matters most.
stable_hash = stable_key_hash


def estimate_join_state(
    left_cardinality: int, right_cardinality: int, right_distinct_keys: int
) -> float:
    """The ROADMAP cost model: open positives × matches per positive.

    ``matches`` is estimated from the negative side's key selectivity — a
    uniform right relation with ``d`` distinct keys contributes ``|s| / d``
    matches to each open positive.
    """
    matches = right_cardinality / max(1, right_distinct_keys)
    return float(left_cardinality) * max(1.0, matches)


def choose_partitions(
    state_estimate: float,
    left_cardinality: int,
    config: ParallelConfig | None = None,
    distinct_keys: int | None = None,
) -> int:
    """Pick a partition count for an estimated join state size.

    Returns 1 (serial) when the input is too small to shard profitably;
    otherwise enough workers to bring per-shard state under the target,
    capped at ``max_workers`` — and at ``distinct_keys`` when known, since
    one key can never be split across shards (extra workers would fork,
    serialize and idle for a guaranteed slowdown).
    """
    config = config or ParallelConfig()
    if left_cardinality < config.min_tuples:
        return 1
    wanted = int(state_estimate // config.state_per_worker) + 1
    if distinct_keys is not None:
        wanted = min(wanted, max(1, distinct_keys))
    return max(1, min(config.max_workers, wanted))


def partition_tuples(
    tuples: Sequence[TPTuple],
    key_of: Callable[[TPTuple], Hashable],
    partitions: int,
) -> List[List[TPTuple]]:
    """Split tuples into ``partitions`` shards by stable key hash.

    Relative order within each shard preserves the input order, so shard
    workers see the same arrival order a serial run would.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    shards: List[List[TPTuple]] = [[] for _ in range(partitions)]
    for tp_tuple in tuples:
        shards[stable_hash(key_of(tp_tuple)) % partitions].append(tp_tuple)
    return shards


def balanced_key_assignment(
    left: Sequence[TPTuple],
    right: Sequence[TPTuple],
    theta: ThetaCondition,
    partitions: int,
) -> dict:
    """Assign join keys to shards by balancing estimated per-key load.

    Pure hash partitioning is the only choice for unbounded streams (the
    key population is unknown up front), but a batch join sees both inputs
    whole — so keys can be weighed (positives × matches, the same state
    model the planner uses) and greedily bin-packed onto the least-loaded
    shard.  With few distinct keys this beats hashing badly: the slowest
    shard, which bounds the parallel speedup, shrinks toward the mean.

    Deterministic: keys are ordered by (weight desc, stable hash) and ties
    in shard load break toward the lowest shard index.
    """
    left_counts: dict = {}
    for tp_tuple in left:
        key = theta.left_key(tp_tuple)
        left_counts[key] = left_counts.get(key, 0) + 1
    right_counts: dict = {}
    for tp_tuple in right:
        key = theta.right_key(tp_tuple)
        right_counts[key] = right_counts.get(key, 0) + 1
    weights = {
        key: left_counts.get(key, 0) * max(1, right_counts.get(key, 0))
        + right_counts.get(key, 0)
        for key in {*left_counts, *right_counts}
    }
    ordered = sorted(weights, key=lambda key: (-weights[key], stable_hash(key)))
    loads = [0] * partitions
    assignment: dict = {}
    for key in ordered:
        index = loads.index(min(loads))
        assignment[key] = index
        loads[index] += weights[key]
    return assignment


def partition_pair(
    left: Sequence[TPTuple],
    right: Sequence[TPTuple],
    theta: ThetaCondition,
    partitions: int,
    balance: bool = True,
) -> tuple[List[List[TPTuple]], List[List[TPTuple]]]:
    """Co-partition both join inputs on the equi-join key.

    With ``balance=True`` (the default) keys are spread by the greedy
    load-balanced assignment of :func:`balanced_key_assignment`; with
    ``balance=False`` the stable hash decides, matching the stream router.
    Either way all tuples of one key land in one shard — the shared-nothing
    invariant.

    Raises:
        ValueError: if θ is not an equi-join (cannot be key-partitioned) —
            callers are expected to fall back to serial execution first.
    """
    if not theta.is_equi:
        raise ValueError("only equi-join conditions can be hash-partitioned")
    if balance:
        assignment = balanced_key_assignment(left, right, theta, partitions)
        left_shards: List[List[TPTuple]] = [[] for _ in range(partitions)]
        right_shards: List[List[TPTuple]] = [[] for _ in range(partitions)]
        for tp_tuple in left:
            left_shards[assignment[theta.left_key(tp_tuple)]].append(tp_tuple)
        for tp_tuple in right:
            right_shards[assignment[theta.right_key(tp_tuple)]].append(tp_tuple)
        return left_shards, right_shards
    return (
        partition_tuples(left, theta.left_key, partitions),
        partition_tuples(right, theta.right_key, partitions),
    )


def shardable(theta: ThetaCondition) -> bool:
    """Whether θ admits key partitioning into more than one shard.

    The always-true condition is formally equi (key ``()``) but every tuple
    lands in the same shard, so sharding it buys nothing; the same holds
    for an equi condition with no attribute pairs.
    """
    if not theta.is_equi:
        return False
    if isinstance(theta, TrueCondition):
        return False
    if isinstance(theta, EquiJoinCondition):
        return bool(theta.pairs)
    # Other equi conditions (e.g. swapped wrappers) are assumed to key on
    # real attributes.
    return True
