"""Compact partition serialization for cross-process shard shipping.

Shards cross the process boundary many times per query (inputs out, outputs
back), so the wire format matters.  Pickling the object graph directly works
— every core type is a picklable dataclass — but ships class metadata and
per-object headers for each tuple, lineage node and interval.  This module
flattens everything into nested tuples of primitives instead:

* a lineage expression becomes a prefix-encoded tuple tree
  (``("v", name)`` / ``("n", child)`` / ``("a", op1, op2, ...)`` /
  ``("o", ...)`` / ``("t",)`` / ``("f",)``), which pickles to a fraction of
  the dataclass graph's size and needs no class lookups to decode;
* a TP tuple becomes ``(fact, lineage_code, start, end, probability)``;
* stream elements become ``("e", side, sequence, tuple_code, clock)`` and
  ``("w", side, value)`` records.

Schemas and event-space restrictions travel as plain tuples/dicts.  Decoding
rebuilds the exact original values — codecs are inverse bijections, tested
round-trip — so shard workers operate on full-fidelity TP tuples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..lineage import FALSE, TRUE, And, EventSpace, LineageExpr, Not, Or, Var
from ..relation import TPTuple
from ..stream.elements import LEFT, RIGHT, StreamEvent, Tagged, Watermark
from ..temporal import Interval

#: Revision kinds by wire code (index = code), derived from the enum itself
#: so the wire order can never drift from RevisionKind's definition order.
#: Populated lazily: repro.dataflow imports this package's stream codecs, so
#: a module-level import here would be circular during package init.
_REVISION_KINDS: list = []


def _revision_kinds() -> list:
    if not _REVISION_KINDS:
        from ..dataflow.revision import RevisionKind

        _REVISION_KINDS.extend(RevisionKind)
    return _REVISION_KINDS


def revision_kind_codes() -> int:
    """How many revision kinds exist: valid wire codes are ``0..count-1``.

    The binary wire codec (:mod:`repro.runtime.wire`) validates a decoded
    revision row's kind byte against this count so a corrupt frame raises a
    clean error instead of failing later inside ``decode_revision_tagged``.
    """
    return len(_revision_kinds())

# --------------------------------------------------------------------------- #
# lineage codec
# --------------------------------------------------------------------------- #
def encode_lineage(expr: LineageExpr) -> tuple:
    """Flatten a lineage expression into a prefix-encoded primitive tuple."""
    if isinstance(expr, Var):
        return ("v", expr.name)
    if expr == TRUE:
        return ("t",)
    if expr == FALSE:
        return ("f",)
    if isinstance(expr, Not):
        return ("n", encode_lineage(expr.child))
    if isinstance(expr, And):
        return ("a", *(encode_lineage(operand) for operand in expr.operands))
    if isinstance(expr, Or):
        return ("o", *(encode_lineage(operand) for operand in expr.operands))
    raise TypeError(f"unsupported lineage node {type(expr).__name__}")


def decode_lineage(code: tuple) -> LineageExpr:
    """Rebuild a lineage expression from its prefix encoding."""
    tag = code[0]
    if tag == "v":
        return Var(code[1])
    if tag == "t":
        return TRUE
    if tag == "f":
        return FALSE
    if tag == "n":
        return Not(decode_lineage(code[1]))
    if tag == "a":
        return And(tuple(decode_lineage(part) for part in code[1:]))
    if tag == "o":
        return Or(tuple(decode_lineage(part) for part in code[1:]))
    raise ValueError(f"unknown lineage code tag {tag!r}")


# --------------------------------------------------------------------------- #
# tuple codec
# --------------------------------------------------------------------------- #
def encode_tuple(tp_tuple: TPTuple) -> tuple:
    """Flatten one TP tuple into primitives."""
    return (
        tp_tuple.fact,
        encode_lineage(tp_tuple.lineage),
        tp_tuple.start,
        tp_tuple.end,
        tp_tuple.probability,
    )


def decode_tuple(code: tuple) -> TPTuple:
    """Rebuild one TP tuple from its encoding."""
    fact, lineage_code, start, end, probability = code
    return TPTuple(tuple(fact), decode_lineage(lineage_code), Interval(start, end), probability)


def encode_tuples(tuples: Iterable[TPTuple]) -> List[tuple]:
    """Encode a batch of TP tuples."""
    return [encode_tuple(tp_tuple) for tp_tuple in tuples]


def decode_tuples(codes: Iterable[tuple]) -> List[TPTuple]:
    """Decode a batch of TP tuples."""
    return [decode_tuple(code) for code in codes]


# --------------------------------------------------------------------------- #
# stream element codec
# --------------------------------------------------------------------------- #
def encode_tagged(tagged: Tagged) -> tuple:
    """Flatten one tagged stream element (event or watermark).

    A sampled element's trace context rides as one extra trailing field —
    appended only when present, so untraced runs ship the exact pre-trace
    wire shape and decoders accept both lengths.
    """
    side_code = 0 if tagged.side == LEFT else 1
    element = tagged.element
    if isinstance(element, StreamEvent):
        code = ("e", side_code, element.sequence, encode_tuple(element.tuple), tagged.ingest_clock)
        return code if tagged.trace is None else code + (tagged.trace,)
    if isinstance(element, Watermark):
        return ("w", side_code, element.value)
    raise TypeError(f"unsupported stream element {element!r}")


def decode_tagged(code: tuple) -> Tagged:
    """Rebuild one tagged stream element from its encoding."""
    side = LEFT if code[1] == 0 else RIGHT
    if code[0] == "e":
        _tag, _side, sequence, tuple_code, clock = code[:5]
        trace = code[5] if len(code) > 5 else None
        return Tagged(
            side, StreamEvent(decode_tuple(tuple_code), sequence=sequence), clock, trace
        )
    if code[0] == "w":
        return Tagged(side, Watermark(code[2]))
    raise ValueError(f"unknown element code tag {code[0]!r}")


# --------------------------------------------------------------------------- #
# revision-stream element codec (dataflow edges)
# --------------------------------------------------------------------------- #
def encode_revision_tagged(tagged: Tagged) -> tuple:
    """Flatten one tagged dataflow element (revision, event or watermark).

    Revisions become ``("r", side, kind_code, provisional, tuple_code,
    clock)`` — plus one trailing trace-context field when the element is
    sampled; events and watermarks keep the stream-element encoding, so a
    source edge and a node edge share one wire format.
    """
    from ..dataflow.revision import Revision

    element = tagged.element
    if isinstance(element, Revision):
        side_code = 0 if tagged.side == LEFT else 1
        code = (
            "r",
            side_code,
            _revision_kinds().index(element.kind),
            element.provisional,
            encode_tuple(element.tuple),
            tagged.ingest_clock,
        )
        return code if tagged.trace is None else code + (tagged.trace,)
    return encode_tagged(tagged)


def decode_revision_tagged(code: tuple) -> Tagged:
    """Rebuild one tagged dataflow element from its encoding."""
    if code[0] != "r":
        return decode_tagged(code)
    from ..dataflow.revision import Revision

    _tag, side_code, kind_code, provisional, tuple_code, clock = code[:6]
    trace = code[6] if len(code) > 6 else None
    side = LEFT if side_code == 0 else RIGHT
    revision = Revision(
        _revision_kinds()[kind_code],
        decode_tuple(tuple_code),
        provisional=provisional,
    )
    return Tagged(side, revision, clock, trace)


# --------------------------------------------------------------------------- #
# event-space restriction
# --------------------------------------------------------------------------- #
def restricted_probabilities(
    events: EventSpace, tuples: Sequence[TPTuple]
) -> Dict[str, float]:
    """The marginal probabilities a shard needs: the events its lineages mention.

    Shipping the full event space to every worker would make IPC cost grow
    with the *total* input size instead of the shard size; restricting to the
    shard's own variables keeps shards genuinely shared-nothing.
    """
    needed: Dict[str, float] = {}
    for tp_tuple in tuples:
        for name in tp_tuple.lineage.variables():
            if name not in needed:
                needed[name] = events.probability(name)
    return needed


def events_from_probabilities(probabilities: Optional[Dict[str, float]]) -> EventSpace:
    """Rebuild an event space from a shipped probability mapping."""
    return EventSpace(probabilities or {})
