"""Shared-nothing parallel execution across worker processes.

The temporal-probabilistic window and probability computations are CPU-bound
pure Python, so thread parallelism is GIL-capped at one core.  This package
shards work across *processes* instead, for both batch and continuous TP
queries:

* :mod:`repro.parallel.plan` — hash partitioning on the equi-join key and
  the state-size cost model (open positives × matches) that picks partition
  counts.
* :mod:`repro.parallel.serialize` — compact codecs for tuples, lineages and
  stream elements, plus per-shard event-space restriction, so IPC volume
  scales with shard size.
* :mod:`repro.parallel.pool` — the worker-pool runtime (fork when
  available, inline fallback when processes cannot start).
* :mod:`repro.parallel.batch` — :func:`parallel_tp_join`: any Table II join
  executed shard-wise with an order-stable canonical merge.
* :mod:`repro.parallel.stream_exec` — the process backend behind
  ``ExecutionOptions(transport="processes")``: per-partition worker
  processes, broadcast watermarks, bounded queues for backpressure.

Correctness invariant: with an equi-θ, every window of a tuple derives only
from tuples sharing its join key, so key-disjoint shards never interact and
shard outputs merge without reconciliation.
"""

from .batch import (
    BATCH_JOINS,
    ParallelJoinResult,
    canonical_order,
    parallel_tp_join,
    plan_workers,
)
from ..runtime import Placement
from .plan import (
    DEFAULT_MAX_WORKERS,
    PLANNER_TRANSPORTS,
    ParallelConfig,
    balanced_key_assignment,
    choose_partitions,
    estimate_join_state,
    partition_pair,
    partition_tuples,
    shardable,
    stable_hash,
)
from .pool import available_cpus, imap_tasks, preferred_context, run_tasks
from .serialize import (
    decode_lineage,
    decode_tagged,
    decode_tuple,
    decode_tuples,
    encode_lineage,
    encode_tagged,
    encode_tuple,
    encode_tuples,
    restricted_probabilities,
)
from .stream_exec import (
    ProcessRunOutcome,
    StreamShardSpec,
    WorkerStartError,
    run_process_partitions,
)

__all__ = [
    "BATCH_JOINS",
    "DEFAULT_MAX_WORKERS",
    "PLANNER_TRANSPORTS",
    "ParallelConfig",
    "Placement",
    "ParallelJoinResult",
    "ProcessRunOutcome",
    "StreamShardSpec",
    "WorkerStartError",
    "available_cpus",
    "balanced_key_assignment",
    "canonical_order",
    "choose_partitions",
    "decode_lineage",
    "decode_tagged",
    "decode_tuple",
    "decode_tuples",
    "encode_lineage",
    "encode_tagged",
    "encode_tuple",
    "encode_tuples",
    "estimate_join_state",
    "imap_tasks",
    "parallel_tp_join",
    "partition_pair",
    "partition_tuples",
    "plan_workers",
    "preferred_context",
    "restricted_probabilities",
    "run_process_partitions",
    "run_tasks",
    "shardable",
    "stable_hash",
]
