"""Columnar (struct-of-arrays) hot path for the streaming engine.

The per-tuple object hot path keeps every open positive and indexed
negative as Python objects and probes them with interpreted loops — the
engine's throughput ceiling.  This package re-lays the window-maintainer
state as per-key struct-of-arrays numpy blocks (int64 interval columns,
boolean alive masks, row-aligned payload lists) and vectorizes the three
dominant sweeps of the paper's incremental join:

* **interval-overlap probing** — one boolean-mask reduction over the
  negative (or open-positive) columns instead of a per-tuple Python loop;
* **bounded-lateness eviction** — watermark horizons applied as boolean
  masks with amortized compaction, instead of per-bucket list rebuilds;
* **batched probability evaluation** — each *distinct* interned lineage
  sub-expression of a finalized batch is evaluated once through the
  hash-cons table and the values are scattered back by intern id
  (:func:`repro.columnar.probs.batch_probabilities`).

The object layout remains first-class: it is the referee every columnar
run must match tuple-for-tuple with bitwise-identical probabilities, and
the automatic fallback when numpy is not installed.  Select a layout with
``ExecutionOptions(layout="columnar")`` (default ``"object"``).

numpy is an *optional* dependency: importing this package never raises,
and :func:`resolve_layout` degrades a columnar request to the object
layout with a :class:`RuntimeWarning` when numpy is missing — the same
degrade-loudly idiom the transports use when workers cannot start.
"""

from __future__ import annotations

import warnings

try:  # pragma: no cover - exercised by the numpy-less CI leg
    import numpy as _numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the numpy-less CI leg
    HAS_NUMPY = False

__all__ = [
    "HAS_NUMPY",
    "LAYOUTS",
    "maintainer_class",
    "resolve_layout",
]

#: Valid values of ``ExecutionOptions.layout``.
LAYOUTS = ("object", "columnar")


def resolve_layout(layout: str) -> str:
    """The layout a run will actually use, degrading loudly without numpy.

    Resolution happens once, driver-side, before worker specs are built —
    the resolved layout travels in the spec, so workers never re-decide.
    """
    if layout not in LAYOUTS:
        raise ValueError(f"layout must be one of {LAYOUTS}, got {layout!r}")
    if layout == "columnar" and not HAS_NUMPY:
        warnings.warn(
            "layout='columnar' requires numpy, which is not installed; "
            "falling back to the object layout",
            RuntimeWarning,
            stacklevel=2,
        )
        return "object"
    return layout


def maintainer_class(layout: str):
    """The window-maintainer implementation behind one resolved layout."""
    if layout == "columnar":
        from .state import ColumnarWindowMaintainer

        return ColumnarWindowMaintainer
    if layout == "object":
        from ..stream.incremental import IncrementalWindowMaintainer

        return IncrementalWindowMaintainer
    raise ValueError(f"layout must be one of {LAYOUTS}, got {layout!r}")
