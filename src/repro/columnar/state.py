"""Struct-of-arrays window maintainer: the columnar twin of the object path.

:class:`ColumnarWindowMaintainer` is API-compatible with
:class:`repro.stream.incremental.IncrementalWindowMaintainer` — same
constructor, same ingestion/retraction/watermark methods, same
:class:`~repro.stream.incremental.OpenPositive` /
:class:`~repro.stream.incremental.FinalizedGroup` entry types, same stats
counters — so both the continuous-join operators and the retractable
dataflow operators run on either implementation unchanged.

What changes is the state layout.  Open positives and indexed negatives
live in *per-key* :class:`_ColumnStore` blocks: int64 ``start`` / ``end``
interval columns and a boolean ``alive`` mask, with the Python-side
payloads (the :class:`~repro.relation.TPTuple` / ``OpenPositive`` objects)
in row-aligned side lists.  The three hot sweeps become numpy kernels over
those columns:

* **probing** — an arriving positive masks its key's negative columns with
  ``(neg_start < end) & (start < neg_end)`` (one vectorized reduction; the
  strict ``<`` comparisons are exactly ``Interval.overlaps``) instead of
  looping the bucket tuple by tuple, and an arriving negative probes the
  key's open-positive columns symmetrically — candidate filtering costs
  ~2 ns/row instead of a ~1 µs/row Python ``intersect`` call;
* **eviction** — ``advance_left`` marks ``end <= watermark`` negative rows
  dead through one boolean mask; storage is reclaimed by amortized
  compaction once dead rows dominate;
* **finalization** — the combined watermark selects closable open rows
  with one mask per bucket; the completed groups then replay the
  *unchanged* batch sweeps (:func:`repro.core.lawan.iter_lawan`), so
  window derivation — and therefore output — is identical by construction.

Equivalence contract: for the same input sequence this class produces the
same entries, the same match lists (same overlap intervals, same per-key
arrival order), the same finalized groups and the same stats counters as
the object maintainer.  Finalization order *across* keys may differ (both
walk their key dicts, but the dicts can be populated in different orders);
within a key both finalize in arrival order, and probabilities come from
the same per-key hash-consed computers, so settled outputs are equal as
sets with bitwise-identical probabilities.  Randomized parity tests in
``tests/columnar/`` hold the two implementations against each other.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..core.overlap import OverlapGroup, OverlapRecord
from ..lineage import EventSpace, ProbabilityComputer
from ..relation import TPTuple, ThetaCondition
from ..relation.predicates import TrueCondition
from ..stream.elements import CLOSED
from ..stream.incremental import (
    _WHOLE_STREAM,
    FinalizedGroup,
    MaintainerStats,
    OpenPositive,
    _match_order,
)
from ..temporal import Interval

#: Compaction trigger: dead rows reclaimed once they exceed this count AND
#: outnumber the live rows (amortized O(1) per ingested element).
_COMPACT_MIN_DEAD = 256

_EMPTY_ROWS = np.empty(0, dtype=np.intp)


class _ColumnStore:
    """One key's struct-of-arrays block with amortized doubling growth.

    Rows are append-only and die in place (``alive`` mask) so row order is
    stable arrival order — the live rows match the object maintainer's
    per-key bucket order.  :meth:`compact` renumbers rows (ascending,
    order-preserving) and returns the kept row indices so the owner can
    realign its row-aligned side list.
    """

    __slots__ = ("start", "end", "alive", "size", "dead", "payload", "min_start", "min_end")

    def __init__(self, capacity: int = 16) -> None:
        self.start = np.zeros(capacity, dtype=np.int64)
        self.end = np.zeros(capacity, dtype=np.int64)
        self.alive = np.zeros(capacity, dtype=bool)
        self.size = 0
        self.dead = 0
        #: Row-aligned Python payloads (OpenPositive entries / TPTuples).
        self.payload: List[object] = []
        #: Lower bounds on the live rows' smallest start/end — exact after
        #: every append, possibly stale (too small) after kills.  Watermark
        #: sweeps use them to skip untouched buckets with one float compare;
        #: owners re-tighten via :meth:`min_live` after killing rows.
        self.min_start = float("inf")
        self.min_end = float("inf")

    def append(self, start: int, end: int, payload: object) -> int:
        if self.size == len(self.start):
            capacity = 2 * len(self.start)
            for name in ("start", "end", "alive"):
                old = getattr(self, name)
                grown = np.zeros(capacity, dtype=old.dtype)
                grown[: self.size] = old[: self.size]
                setattr(self, name, grown)
        row = self.size
        self.start[row] = start
        self.end[row] = end
        self.alive[row] = True
        self.size = row + 1
        if start < self.min_start:
            self.min_start = start
        if end < self.min_end:
            self.min_end = end
        if row == len(self.payload):
            self.payload.append(payload)
        else:
            self.payload[row] = payload
        return row

    def probe_rows(self, start: int, end: int) -> np.ndarray:
        """Rows alive whose interval overlaps ``[start, end)``."""
        n = self.size
        if n == 0:
            return _EMPTY_ROWS
        mask = self.start[:n] < end
        mask &= self.end[:n] > start
        if self.dead:
            mask &= self.alive[:n]
        return np.flatnonzero(mask)

    def live_rows(self) -> np.ndarray:
        """Alive rows in arrival order."""
        n = self.size
        if n == 0:
            return _EMPTY_ROWS
        if not self.dead:
            return np.arange(n, dtype=np.intp)
        return np.flatnonzero(self.alive[:n])

    def horizon_rows(self, horizon: float) -> np.ndarray:
        """Alive rows with ``end <= horizon`` (watermark sweeps)."""
        n = self.size
        if n == 0:
            return _EMPTY_ROWS
        mask = self.end[:n] <= horizon
        if self.dead:
            mask &= self.alive[:n]
        return np.flatnonzero(mask)

    def min_live(self, column: np.ndarray) -> float:
        """Smallest value of ``column`` over alive rows (inf when none)."""
        n = self.size
        if n == 0:
            return float("inf")
        if not self.dead:
            return float(column[:n].min())
        live = self.alive[:n]
        if not live.any():
            return float("inf")
        return float(column[:n][live].min())

    def kill(self, rows: np.ndarray) -> None:
        self.alive[rows] = False
        self.dead += len(rows)

    def kill_one(self, row: int) -> None:
        self.alive[row] = False
        self.dead += 1
        self.payload[row] = None

    def tighten(self) -> None:
        """Re-tighten the cached minima after rows died (keeps them exact)."""
        self.min_start = self.min_live(self.start)
        self.min_end = self.min_live(self.end)

    def maybe_compact(self) -> None:
        if self.dead <= _COMPACT_MIN_DEAD or 2 * self.dead <= self.size:
            return
        keep = self.live_rows()
        count = len(keep)
        for name in ("start", "end"):
            column = getattr(self, name)
            column[:count] = column[keep]
        self.alive[:count] = True
        self.alive[count : self.size] = False
        payload = self.payload
        self.payload = [payload[row] for row in keep.tolist()]
        self.size = count
        self.dead = 0


class ColumnarWindowMaintainer:
    """Per-key overlap state on numpy columns, object-maintainer compatible."""

    def __init__(self, theta: ThetaCondition, events: Optional[EventSpace] = None) -> None:
        self._theta = theta
        self._partitioned = theta.is_equi
        # Equi keys imply θ and TrueCondition is vacuous; any other θ (a
        # predicate condition) must still be evaluated — but only on the
        # interval-filtered candidate rows, which is the small set.
        self._check_theta = not (theta.is_equi or isinstance(theta, TrueCondition))
        self._watermark_left: float = float("-inf")
        self._watermark_right: float = float("-inf")
        self._finalized_through: float = float("-inf")
        self.stats = MaintainerStats()
        self._open_count = 0
        self._negative_count = 0
        self._serial = 0
        self._events = events
        self._computers: Dict[Hashable, ProbabilityComputer] = {}
        self._min_open_end: float = float("inf")
        self._min_negative_end: float = float("inf")
        #: Per-key column blocks; payload rows are OpenPositive entries.
        self._open: Dict[Hashable, _ColumnStore] = {}
        #: Per-key column blocks; payload rows are negative TPTuples.
        self._negatives: Dict[Hashable, _ColumnStore] = {}

    # ------------------------------------------------------------------ #
    # watermark accessors (object-maintainer API)
    # ------------------------------------------------------------------ #
    @property
    def combined_watermark(self) -> float:
        return min(self._watermark_left, self._watermark_right)

    @property
    def open_positives(self) -> int:
        return self._open_count

    @property
    def indexed_negatives(self) -> int:
        return self._negative_count

    def min_open_start(self) -> float:
        """Exact smallest interval start among open positives (inf when none).

        ``min_start`` is re-tightened at every kill site, so the cached
        per-store value is exact, not just a lower bound.
        """
        value = min(
            (store.min_start for store in self._open.values()),
            default=float("inf"),
        )
        # The object path returns the raw tuple start (an int); keep parity.
        return int(value) if value != float("inf") else value

    def computer_for(self, key: Hashable) -> ProbabilityComputer:
        if self._events is None:
            raise ValueError(
                "maintainer was built without an event space; "
                "pass events= to materialize probabilities"
            )
        computer = self._computers.get(key)
        if computer is None:
            computer = ProbabilityComputer(self._events, hash_cons=True)
            self._computers[key] = computer
        return computer

    def probability_counters(self) -> Dict[str, int]:
        totals = {
            "probability_cache_hits": 0,
            "probability_cache_misses": 0,
            "probability_intern_hits": 0,
            "probability_intern_misses": 0,
        }
        for computer in self._computers.values():
            totals["probability_cache_hits"] += computer.cache_hits
            totals["probability_cache_misses"] += computer.cache_misses
            totals["probability_intern_hits"] += computer.intern_hits
            totals["probability_intern_misses"] += computer.intern_misses
        return totals

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    def _positive_key(self, tp_tuple: TPTuple) -> Hashable:
        return self._theta.left_key(tp_tuple) if self._partitioned else _WHOLE_STREAM

    def _negative_key(self, tp_tuple: TPTuple) -> Hashable:
        return self._theta.right_key(tp_tuple) if self._partitioned else _WHOLE_STREAM

    # ------------------------------------------------------------------ #
    # event ingestion
    # ------------------------------------------------------------------ #
    def add_positive(
        self, tp_tuple: TPTuple, ingest_clock: float = 0.0
    ) -> Optional[OpenPositive]:
        self.stats.positives_in += 1
        start = tp_tuple.start
        if start < self._watermark_left:
            self.stats.late_positives_dropped += 1
            return None
        key = self._positive_key(tp_tuple)
        self._serial += 1
        entry = OpenPositive(
            tp_tuple, ingest_clock=ingest_clock, key=key, serial=self._serial
        )
        end = tp_tuple.end
        bucket = self._negatives.get(key)
        if bucket is not None:
            rows = bucket.probe_rows(start, end)
            if len(rows):
                matches = entry.matches
                tuples = bucket.payload
                check = self._check_theta
                for row in rows.tolist():
                    negative = tuples[row]
                    if check and not self._theta.evaluate(tp_tuple, negative):
                        continue
                    overlap_start = start if start >= negative.start else negative.start
                    overlap_end = end if end <= negative.end else negative.end
                    matches.append(
                        OverlapRecord(
                            tp_tuple, negative, Interval(overlap_start, overlap_end)
                        )
                    )
        store = self._open.get(key)
        if store is None:
            store = self._open[key] = _ColumnStore()
        store.append(start, end, entry)
        self._open_count += 1
        if end < self._min_open_end:
            self._min_open_end = end
        if self._open_count > self.stats.peak_open_positives:
            self.stats.peak_open_positives = self._open_count
        return entry

    def add_negative(self, tp_tuple: TPTuple) -> List[OpenPositive]:
        self.stats.negatives_in += 1
        start = tp_tuple.start
        if start < self._watermark_right:
            self.stats.late_negatives_dropped += 1
            return []
        key = self._negative_key(tp_tuple)
        end = tp_tuple.end
        store = self._negatives.get(key)
        if store is None:
            store = self._negatives[key] = _ColumnStore()
        store.append(start, end, tp_tuple)
        self._negative_count += 1
        if end < self._min_negative_end:
            self._min_negative_end = end
        if self._negative_count > self.stats.peak_indexed_negatives:
            self.stats.peak_indexed_negatives = self._negative_count
        affected: List[OpenPositive] = []
        bucket = self._open.get(key)
        if bucket is not None:
            rows = bucket.probe_rows(start, end)
            if len(rows):
                entries = bucket.payload
                check = self._check_theta
                for open_row in rows.tolist():
                    entry = entries[open_row]
                    positive = entry.tuple
                    if check and not self._theta.evaluate(positive, tp_tuple):
                        continue
                    overlap_start = start if start >= positive.start else positive.start
                    overlap_end = end if end <= positive.end else positive.end
                    entry.matches.append(
                        OverlapRecord(
                            positive, tp_tuple, Interval(overlap_start, overlap_end)
                        )
                    )
                    affected.append(entry)
        return affected

    # ------------------------------------------------------------------ #
    # retraction (revision-stream inputs)
    # ------------------------------------------------------------------ #
    def remove_positive(self, tp_tuple: TPTuple) -> Optional[OpenPositive]:
        store = self._open.get(self._positive_key(tp_tuple))
        if store is None:
            return None
        identity = tp_tuple.key()
        for row in store.live_rows().tolist():
            entry = store.payload[row]
            if entry.tuple.key() == identity:
                store.kill_one(row)
                store.tighten()
                self._open_count -= 1
                self.stats.positives_retracted += 1
                store.maybe_compact()
                return entry
        return None

    def remove_negative(self, tp_tuple: TPTuple) -> List[OpenPositive]:
        key = self._negative_key(tp_tuple)
        identity = tp_tuple.key()
        store = self._negatives.get(key)
        if store is not None:
            for row in store.live_rows().tolist():
                if store.payload[row].key() == identity:
                    store.kill_one(row)
                    store.tighten()
                    self._negative_count -= 1
                    break
            store.maybe_compact()
        self.stats.negatives_retracted += 1
        affected: List[OpenPositive] = []
        bucket = self._open.get(key)
        if bucket is not None:
            for row in bucket.live_rows().tolist():
                entry = bucket.payload[row]
                kept = [record for record in entry.matches if record.s.key() != identity]
                if len(kept) != len(entry.matches):
                    entry.matches[:] = kept
                    affected.append(entry)
        return affected

    # ------------------------------------------------------------------ #
    # watermark advancement and finalization
    # ------------------------------------------------------------------ #
    def advance_left(self, watermark: float) -> List[FinalizedGroup]:
        if watermark > self._watermark_left:
            self._watermark_left = watermark
            self._evict_negatives()
        return self._finalize()

    def advance_right(self, watermark: float) -> List[FinalizedGroup]:
        if watermark > self._watermark_right:
            self._watermark_right = watermark
        return self._finalize()

    def close(self) -> List[FinalizedGroup]:
        self._watermark_left = CLOSED
        self._watermark_right = CLOSED
        self._evict_negatives()
        return self._finalize()

    def _finalize(self) -> List[FinalizedGroup]:
        horizon = self.combined_watermark
        if horizon <= self._finalized_through:
            return []
        self._finalized_through = horizon
        if horizon < self._min_open_end:
            return []
        finalized: List[FinalizedGroup] = []
        min_open_end = float("inf")
        for store in self._open.values():
            # Cached minima are exact (re-tightened at every kill site), so
            # an untouched bucket costs one float compare, not a numpy pass.
            if store.min_end > horizon:
                if store.min_end < min_open_end:
                    min_open_end = store.min_end
                continue
            rows = store.horizon_rows(horizon)
            if len(rows):
                entries = store.payload
                for row in rows.tolist():
                    entry = entries[row]
                    entry.matches.sort(key=_match_order)
                    self.stats.groups_finalized += 1
                    self._open_count -= 1
                    finalized.append(
                        FinalizedGroup(
                            OverlapGroup(entry.tuple, entry.matches),
                            entry.ingest_clock,
                            key=entry.key,
                            serial=entry.serial,
                        )
                    )
                    entries[row] = None
                store.kill(rows)
                store.maybe_compact()
            store.tighten()
            if store.min_end < min_open_end:
                min_open_end = store.min_end
        self._min_open_end = min_open_end
        return finalized

    def _evict_negatives(self) -> None:
        horizon = self._watermark_left
        if horizon < self._min_negative_end:
            return
        min_negative_end = float("inf")
        for store in self._negatives.values():
            if store.min_end > horizon:
                if store.min_end < min_negative_end:
                    min_negative_end = store.min_end
                continue
            rows = store.horizon_rows(horizon)
            if len(rows):
                store.kill(rows)
                tuples = store.payload
                for row in rows.tolist():
                    tuples[row] = None
                self.stats.negatives_evicted += len(rows)
                self._negative_count -= len(rows)
                store.maybe_compact()
            store.tighten()
            if store.min_end < min_negative_end:
                min_negative_end = store.min_end

    # ------------------------------------------------------------------ #
    # checkpoint accessors (shared with the object maintainer)
    # ------------------------------------------------------------------ #
    def open_items(self) -> List[Tuple[Hashable, List[OpenPositive]]]:
        """Open entries grouped per key, keys in first-seen order."""
        items = []
        for key, store in self._open.items():
            entries = [store.payload[row] for row in store.live_rows().tolist()]
            if entries:
                items.append((key, entries))
        return items

    def negative_items(self) -> List[Tuple[Hashable, List[TPTuple]]]:
        """Indexed negatives grouped per key, keys in first-seen order."""
        items = []
        for key, store in self._negatives.items():
            bucket = [store.payload[row] for row in store.live_rows().tolist()]
            if bucket:
                items.append((key, bucket))
        return items

    def load_open_entries(self, key: Hashable, entries: List[OpenPositive]) -> None:
        """Checkpoint restore: adopt pre-built open entries for one key."""
        store = self._open.get(key)
        if store is None:
            store = self._open[key] = _ColumnStore()
        for entry in entries:
            store.append(entry.tuple.start, entry.tuple.end, entry)
        self._open_count += len(entries)

    def load_negatives(self, key: Hashable, bucket: List[TPTuple]) -> None:
        """Checkpoint restore: adopt one key's indexed negatives."""
        store = self._negatives.get(key)
        if store is None:
            store = self._negatives[key] = _ColumnStore()
        for negative in bucket:
            store.append(negative.start, negative.end, negative)
        self._negative_count += len(bucket)
