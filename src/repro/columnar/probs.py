"""Batched probability evaluation over the hash-cons table.

A finalized micro-batch of windows repeats lineage structures heavily:
every window of one positive tuple shares the ``λr ∧ ¬(λs1 ∨ ...)`` frame,
and adjacent windows differ by one operand.  The object hot path pays one
``probability()`` call per output tuple anyway — each a hash-cons intern
walk plus a memo probe.  The batch kernel here restructures that loop:
intern every lineage of the batch first, dedupe by canonical-node identity,
evaluate each *distinct* expression exactly once, then scatter the values
back to the batch positions by intern id.

Bitwise equivalence with the sequential path is structural: the values are
produced by the very same :class:`~repro.lineage.ProbabilityComputer` memo
the sequential path uses, and a duplicate occurrence receives the float the
first occurrence computed — which is exactly what the sequential path's
memo hit would have returned.
"""

from __future__ import annotations

from typing import List, Sequence

from ..lineage import LineageExpr, ProbabilityComputer

__all__ = ["batch_probabilities", "probability_column"]


def batch_probabilities(
    computer: ProbabilityComputer, lineages: Sequence[LineageExpr]
) -> List[float]:
    """Probabilities for a batch of lineages, one evaluation per distinct expr.

    Returns a list aligned with ``lineages``.  Values are bitwise-identical
    to calling ``computer.probability`` per element in order: distinct
    expressions are evaluated in first-occurrence order through the same
    memo, and duplicates are scattered from the first occurrence's value.
    """
    values: List[float] = [0.0] * len(lineages)
    seen: dict = {}
    for position, lineage in enumerate(lineages):
        canonical = computer.intern(lineage)
        cached = seen.get(id(canonical))
        if cached is None:
            # First occurrence: evaluate through the computer (which memoises
            # by the same canonical identity for future batches too).
            value = computer.probability(canonical)
            seen[id(canonical)] = (value, canonical)
            values[position] = value
        else:
            values[position] = cached[0]
    return values


def probability_column(
    computer: ProbabilityComputer, lineages: Sequence[LineageExpr]
):
    """Batch probabilities as a float64 numpy column (requires numpy)."""
    import numpy as np

    return np.asarray(batch_probabilities(computer, lineages), dtype=np.float64)
