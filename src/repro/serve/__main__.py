"""``python -m repro.serve`` — serve standing TP queries, or subscribe.

Server:

    python -m repro.serve --listen 127.0.0.1:7654 --demo

binds the NDJSON front-end and (with ``--demo``) registers three demo
streams ``a``/``b``/``c`` plus a standing query ``demo`` (a left outer
join of ``a`` and ``b``).  SIGINT/SIGTERM shut the server down cleanly:
running plan groups are cancelled, hubs closed, subscribers see ``end``.

Client:

    python -m repro.serve --connect 127.0.0.1:7654 --subscribe demo

subscribes (snapshot first, unless ``--no-snapshot``) and prints each
message as one JSON line; ``--snapshot-only demo`` fetches just the
materialized state, ``--list`` the registered names, ``--explain demo``
the shared-subplan-annotated physical plan, ``--stats`` one serving
stats/telemetry reading, ``--watch SECONDS`` a stats line every interval.

Observability: the server runs with worker metrics enabled; ``--stats``
and ``--watch`` read them over NDJSON, and ``--metrics-port PORT``
additionally exposes a Prometheus text endpoint (``GET /metrics``).
``--trace`` enables span-per-element tracing (``--trace-sample-rate``
controls the sampling, default 1%); a client reads the spans live with
``--trace-dump``, and ``--trace-out PATH`` writes the full Chrome
trace-event JSON at server shutdown (open it in chrome://tracing or
Perfetto).  ``--log-level``/``--log-json`` configure stdlib logging
(default output is unchanged: message-only lines on stdout).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import os
import random
import signal
import sys
from dataclasses import replace
from typing import Optional, Sequence

from ..obs import MetricsAggregator, configure_logging, start_metrics_http_server
from ..options import ExecutionOptions
from ..runtime.placement import parse_host_port
from .registry import StandingQueryService
from .server import ServeClient, ServeServer

# Explicit name: under ``python -m repro.serve`` this module runs as
# ``__main__``, which would fall outside the configured ``repro`` tree.
_LOGGER = logging.getLogger("repro.serve.cli")


def demo_catalog(seed: int = 7, size: int = 40, num_keys: int = 4):
    """A catalog with three small random demo streams ``a``/``b``/``c``."""
    from ..datasets import ReplayConfig, stream_def
    from ..engine import Catalog
    from ..relation import Schema, TPRelation

    catalog = Catalog()
    for offset, name in enumerate("abc"):
        rng = random.Random(seed * 101 + offset)
        rows = []
        for index in range(size):
            key = f"k{rng.randrange(num_keys)}"
            start = rng.randrange(0, 30)
            end = start + rng.randrange(1, 8)
            probability = round(rng.uniform(0.05, 0.95), 3)
            serial = f"{name}{index}"
            rows.append((key, serial, serial, start, end, probability))
        relation = TPRelation.from_rows(Schema.of("Key", "Serial"), rows, name=name)
        catalog.register_stream(
            name,
            stream_def(
                relation,
                ReplayConfig(disorder=5, seed=seed * 13 + offset, watermark_every=4),
            ),
        )
    return catalog


def _register_demo_queries(service: StandingQueryService) -> None:
    from ..dataflow.graph import NodeSpec

    service.register(
        "demo",
        [NodeSpec("demo_join", "left_outer", "a", "b", (("Key", "Key"),))],
    )


def _render_prometheus(service: StandingQueryService) -> str:
    """Worker snapshots + per-query hub readings as one text exposition."""
    aggregator = MetricsAggregator()
    aggregator.update_all(service.worker_snapshots())
    for name, entry in service.metrics().items():
        hub = entry.get("hub")
        if not hub:
            continue
        aggregator.update(
            {
                "labels": {"worker": f"hub/{name}", "query": name, "component": "hub"},
                "counters": {
                    f"hub_{key}": hub[key]
                    for key in (
                        "published",
                        "dropped_provisional",
                        "publish_blocks",
                        "disconnects",
                    )
                },
                "gauges": {
                    f"hub_{key}": hub[key]
                    for key in (
                        "ring_size",
                        "ring_high_watermark",
                        "capacity",
                        "subscribers",
                        "max_cursor_lag",
                    )
                },
                "histograms": {},
            }
        )
    return aggregator.prometheus_text()


async def _serve(
    service: StandingQueryService,
    host: str,
    port: int,
    metrics_port: Optional[int],
    trace_out: Optional[str] = None,
) -> int:
    server = ServeServer(service, host, port)
    await server.start()
    metrics_server = None
    if metrics_port is not None:
        metrics_server = start_metrics_http_server(
            host, metrics_port, lambda: _render_prometheus(service)
        )
        bound = metrics_server.server_address
        _LOGGER.info("repro serve metrics on http://%s:%s/metrics", bound[0], bound[1])
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-Unix loops
            pass
    await stop.wait()
    # Exact bytes matter: clients grep this line to confirm a clean exit.
    _LOGGER.info("repro serve shutting down")
    if metrics_server is not None:
        metrics_server.shutdown()
    await server.close()
    service.shutdown()
    if trace_out is not None:
        from ..obs import TraceAggregator

        aggregator = TraceAggregator()
        aggregator.add_spans(service.trace_spans())
        aggregator.write_chrome_trace(trace_out)
        _LOGGER.info(
            "repro serve wrote %d trace span(s) to %s", len(aggregator), trace_out
        )
    return 0


def _run_client(arguments) -> int:
    host, port = parse_host_port(arguments.connect)
    with ServeClient(host, port) as client:
        if arguments.list:
            print(json.dumps(client.list_queries()))
            return 0
        if arguments.explain:
            print(client.explain(arguments.explain))
            return 0
        if arguments.snapshot_only:
            for tp_tuple in client.snapshot(arguments.snapshot_only):
                print(tp_tuple)
            return 0
        if arguments.stats:
            print(json.dumps(client.stats()))
            return 0
        if arguments.trace_dump:
            print(json.dumps(client.trace()))
            return 0
        if arguments.watch is not None:
            for message in client.watch(arguments.watch):
                print(json.dumps(message), flush=True)
            return 0
        if arguments.subscribe:
            client.subscribe(
                arguments.subscribe, snapshot=not arguments.no_snapshot
            )
            for message in client.events():
                print(json.dumps(message), flush=True)
            return 0
    print(
        "nothing to do: pass --subscribe/--snapshot-only/--list/--explain"
        "/--stats/--watch"
    )
    return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Standing-query serving front-end (NDJSON over TCP).",
    )
    parser.add_argument("--listen", metavar="HOST:PORT", help="run the server")
    parser.add_argument(
        "--demo",
        action="store_true",
        help="register demo streams a/b/c and a standing query 'demo'",
    )
    parser.add_argument("--hub-capacity", type=int, default=256)
    parser.add_argument(
        "--policy", choices=("block", "drop_provisional", "disconnect"),
        default="block", help="slow-subscriber policy",
    )
    parser.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep a query running this long after its last subscriber detaches",
    )
    parser.add_argument(
        "--transport", choices=("threads", "inline"), default="threads"
    )
    parser.add_argument("--connect", metavar="HOST:PORT", help="run as a client")
    parser.add_argument("--subscribe", metavar="NAME", help="subscribe to a query")
    parser.add_argument(
        "--no-snapshot", action="store_true", help="skip the snapshot on subscribe"
    )
    parser.add_argument("--snapshot-only", metavar="NAME", help="fetch one snapshot")
    parser.add_argument("--explain", metavar="NAME", help="print the physical plan")
    parser.add_argument("--list", action="store_true", help="list standing queries")
    parser.add_argument(
        "--stats", action="store_true", help="print one serving stats/metrics reading"
    )
    parser.add_argument(
        "--watch", type=float, metavar="SECONDS",
        help="print a stats line every SECONDS until interrupted",
    )
    parser.add_argument(
        "--metrics-port", type=int, metavar="PORT",
        help="also expose a Prometheus text endpoint on this port (server mode)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="enable span-per-element tracing of served queries (server mode)",
    )
    parser.add_argument(
        "--trace-sample-rate", type=float, default=None, metavar="RATE",
        help="fraction of elements to trace, 0..1 (default 0.01; implies --trace)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write a Chrome trace-event JSON file at server shutdown "
        "(implies --trace; open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--trace-dump", action="store_true",
        help="print one live reading of the server's trace spans (client mode)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="SECONDS",
        help="seconds between worker state checkpoints "
        "(ExecutionOptions.checkpoint_interval; 0 checkpoints every batch)",
    )
    parser.add_argument(
        "--restart-limit", type=int, default=0, metavar="N",
        help="max seat re-executions before a failure is fatal "
        "(ExecutionOptions.restart_limit; recovery applies to socket runs)",
    )
    parser.add_argument(
        "--seat-timeout", type=float, default=None, metavar="SECONDS",
        help="per-seat result-frame timeout (ExecutionOptions.seat_timeout)",
    )
    parser.add_argument(
        "--log-level", default="info",
        choices=("debug", "info", "warning", "error"),
        help="stdlib logging level for the repro logger tree",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log lines as JSON objects instead of plain messages",
    )
    arguments = parser.parse_args(argv)
    configure_logging(arguments.log_level, json_mode=arguments.log_json)

    if arguments.connect:
        try:
            return _run_client(arguments)
        except BrokenPipeError:
            # Downstream closed our stdout (`... | head`): conventional
            # quiet exit, and point the fd at devnull so the interpreter's
            # final flush cannot raise a second BrokenPipeError.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
        except OSError as error:
            print(f"repro serve: cannot reach {arguments.connect}: {error}")
            return 1
    if not arguments.listen:
        parser.error("pass --listen HOST:PORT (server) or --connect (client)")
    host, port = parse_host_port(arguments.listen)
    if arguments.demo:
        catalog = demo_catalog()
    else:
        from ..engine import Catalog

        catalog = Catalog()
    trace_on = (
        arguments.trace
        or arguments.trace_out is not None
        or arguments.trace_sample_rate is not None
    )
    config = ExecutionOptions(
        early_emit=True,
        metrics=True,
        trace=trace_on,
        checkpoint_interval=arguments.checkpoint_interval,
        restart_limit=arguments.restart_limit,
        seat_timeout=arguments.seat_timeout,
    )
    if arguments.trace_sample_rate is not None:
        config = replace(config, trace_sample_rate=arguments.trace_sample_rate)
    service = StandingQueryService(
        catalog,
        config=config,
        hub_capacity=arguments.hub_capacity,
        policy=arguments.policy,
        linger_seconds=arguments.linger,
        transport=arguments.transport,
    )
    if arguments.demo:
        _register_demo_queries(service)
    return asyncio.run(
        _serve(service, host, port, arguments.metrics_port, arguments.trace_out)
    )


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
