"""The fan-out hub: one bounded ring, N subscriber cursors.

Delivering a standing query's revision stream to N subscribers by giving
each a private queue copies every element N times and lets one stalled
client buffer without bound.  The hub instead keeps **one** bounded ring of
``(sequence, element)`` entries and gives each subscriber a monotone cursor
into it; an entry is retired once every live cursor has passed it, so the
memory cost of fan-out is one ring plus N integers.

When the ring fills — the slowest subscriber is ``capacity`` elements
behind — the configured policy decides, in publisher context:

* ``block`` — the publisher waits for the laggard (backpressure; a worker
  thread stalls, and transitively the sources do too);
* ``drop_provisional`` — *droppable* entries (provisional revisions and
  watermarks) are evicted from the ring, oldest first, and a droppable
  incoming element is discarded when nothing can be evicted.  Settled
  revisions are **never** dropped — subscribers get a best-effort
  provisional view but an exact settled stream, and the materialized cache
  (updated for every element, dropped or not) reconciles snapshots;
* ``disconnect`` — the slowest subscriber is forcibly detached (its next
  read raises :class:`SlowSubscriberDisconnected`; it can re-subscribe and
  recover through a snapshot), freeing its entries.

Cursors never regress: a read only ever advances its cursor past the entry
it returned.  Publishing and cache maintenance happen under one lock —
``publish(element, update=cache.apply)`` applies the cache update and the
ring append atomically, and ``attach(snapshot_fn)`` takes its snapshot
under the same lock, which is what makes a late joiner's snapshot + tail
exactly equal to a from-start subscriber's accumulated state.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from ..dataflow.revision import Revision
from ..stream.elements import Watermark

#: Slow-subscriber policies, in documentation order.
POLICIES = ("block", "drop_provisional", "disconnect")

#: First trace id a hub's sampler hands out.  Hub traces are rooted at the
#: hub (taps strip the per-element context workers propagate), so their id
#: space is offset far above the driver sampler's sequential ids — both
#: land in one TraceAggregator without colliding timelines.
HUB_TRACE_ID_BASE = 1_000_000

#: How many recently published traced sequences a hub remembers, so a
#: subscriber's cursor advance can be attributed to its publish span.
_TRACED_SEQ_LIMIT = 64


class _EndOfStream:
    """Sentinel a drained, closed hub returns from :meth:`FanoutHub.read`."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "END_OF_STREAM"


#: Returned by ``read`` when the hub is closed and the cursor is at the end.
END_OF_STREAM = _EndOfStream()


class SlowSubscriberDisconnected(RuntimeError):
    """This subscriber fell ``capacity`` behind under the disconnect policy.

    The subscription is dead; the client re-subscribes and recovers the
    missed settled state through the standing query's snapshot.
    """


def droppable(item: Any) -> bool:
    """Whether the ``drop_provisional`` policy may discard this element.

    Provisional revisions are best-effort by definition; watermarks are
    monotone promises superseded by any later one (and end-of-stream is
    signalled by hub closure, not by a final watermark).  Settled revisions
    are never droppable.
    """
    if isinstance(item, Revision):
        return item.provisional
    return isinstance(item, Watermark)


class _SubscriberState:
    __slots__ = ("cursor", "disconnected")

    def __init__(self, cursor: int) -> None:
        self.cursor = cursor
        self.disconnected = False


class HubSubscription:
    """One subscriber's handle: a cursor plus the snapshot taken at attach."""

    def __init__(self, hub: "FanoutHub", subscriber_id: int) -> None:
        self._hub = hub
        self.id = subscriber_id
        #: Filled by ``attach(snapshot_fn)`` — the atomically consistent
        #: snapshot this subscription's tail continues from (``None`` when
        #: no snapshot was requested).
        self.snapshot: Optional[list] = None

    @property
    def cursor(self) -> int:
        """The next sequence number this subscription will read."""
        return self._hub.cursor_of(self.id)

    def read(self, timeout: Optional[float] = None):
        """Next element; ``END_OF_STREAM`` when done, ``None`` on timeout."""
        return self._hub.read(self.id, timeout)

    def __iter__(self) -> Iterator:
        while True:
            item = self.read()
            if item is END_OF_STREAM:
                return
            yield item

    def close(self) -> None:
        """Detach from the hub (idempotent)."""
        self._hub.detach(self.id)


class FanoutHub:
    """Bounded shared-ring fan-out of one element stream to N cursors."""

    def __init__(
        self,
        capacity: int = 256,
        policy: str = "block",
        tracer=None,
        sampler=None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("hub capacity must be positive")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self._capacity = capacity
        self._policy = policy
        # Optional tracing (repro.obs.trace): the sampler picks published
        # elements, ``hub_publish`` spans mark ring entry and
        # ``cursor_advance`` spans mark each subscriber's pickup of a traced
        # sequence.  Both default to None — the untraced hub path is
        # unchanged but for one ``is None`` test per publish/read.
        self._tracer = tracer
        self._sampler = sampler if tracer is not None else None
        self._traced: Dict[int, Tuple[int, str]] = {}
        self._ring: Deque[Tuple[int, Any]] = deque()
        self._cond = threading.Condition()
        self._next_seq = 0
        self._states: Dict[int, _SubscriberState] = {}
        self._ids = itertools.count()
        self._closed = False
        # Statistics, all guarded by the condition's lock.
        self.published = 0
        self.dropped_provisional = 0
        self.publish_blocks = 0
        self.disconnects = 0
        self.max_ring = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def lock(self) -> threading.Condition:
        """The hub lock; snapshots of hub-maintained state take it."""
        return self._cond

    @property
    def subscriber_count(self) -> int:
        with self._cond:
            return sum(1 for state in self._states.values() if not state.disconnected)

    def ring_size(self) -> int:
        with self._cond:
            return len(self._ring)

    def trace_spans(self) -> List[dict]:
        """Every span this hub's tracer retains (empty when untraced)."""
        if self._tracer is None:
            return []
        with self._cond:
            return self._tracer.dump()

    def subscriber_lags(self) -> Dict[int, int]:
        """Per-subscriber cursor lag: elements published but not yet read.

        A stalled client shows up here long before any policy fires — its
        lag climbs toward ``capacity`` while everyone else's hovers near 0.
        Disconnected subscribers are excluded (their cursor is dead).
        """
        with self._cond:
            return {
                subscriber_id: self._next_seq - state.cursor
                for subscriber_id, state in self._states.items()
                if not state.disconnected
            }

    def metrics(self) -> Dict[str, float]:
        """One consistent reading of the hub's counters and occupancy."""
        with self._cond:
            lags = [
                self._next_seq - state.cursor
                for state in self._states.values()
                if not state.disconnected
            ]
            return {
                "published": self.published,
                "dropped_provisional": self.dropped_provisional,
                "publish_blocks": self.publish_blocks,
                "disconnects": self.disconnects,
                "ring_size": len(self._ring),
                "ring_high_watermark": self.max_ring,
                "capacity": self._capacity,
                "subscribers": len(lags),
                "max_cursor_lag": max(lags) if lags else 0,
            }

    # ------------------------------------------------------------------ #
    # subscriber side
    # ------------------------------------------------------------------ #
    def attach(
        self, snapshot_fn: Optional[Callable[[], list]] = None
    ) -> HubSubscription:
        """Attach a subscriber at the current tail.

        ``snapshot_fn`` (typically ``cache.snapshot``) runs under the hub
        lock, atomically with the cursor placement: the returned
        subscription's ``snapshot`` plus its future tail is exactly the
        element-for-element state a from-start subscriber accumulated.
        """
        with self._cond:
            subscriber_id = next(self._ids)
            self._states[subscriber_id] = _SubscriberState(self._next_seq)
            subscription = HubSubscription(self, subscriber_id)
            if snapshot_fn is not None:
                subscription.snapshot = snapshot_fn()
            return subscription

    def cursor_of(self, subscriber_id: int) -> int:
        with self._cond:
            state = self._states.get(subscriber_id)
            if state is None:
                raise ValueError(f"subscriber {subscriber_id} is detached")
            return state.cursor

    def read(self, subscriber_id: int, timeout: Optional[float] = None):
        """Next element for one subscriber.

        Blocks while the ring holds nothing past the cursor; returns
        ``END_OF_STREAM`` once the hub is closed and drained, ``None`` on
        timeout.  Raises :class:`SlowSubscriberDisconnected` if the
        disconnect policy evicted this subscriber, ``ValueError`` after an
        explicit detach.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                state = self._states.get(subscriber_id)
                if state is None:
                    raise ValueError(f"subscriber {subscriber_id} is detached")
                if state.disconnected:
                    raise SlowSubscriberDisconnected(
                        f"subscriber {subscriber_id} fell {self._capacity} "
                        "elements behind and was disconnected (policy="
                        "'disconnect'); re-subscribe with a snapshot to recover"
                    )
                entry = self._first_at_or_after(state.cursor)
                if entry is not None:
                    sequence, item = entry
                    state.cursor = sequence + 1  # monotone: sequence >= cursor
                    if self._traced:
                        traced = self._traced.get(sequence)
                        if traced is not None:
                            now = time.perf_counter()
                            self._tracer.record(
                                "cursor_advance", traced[0], traced[1], now, now,
                                seq=sequence, subscriber=subscriber_id,
                            )
                    self._evict_consumed()
                    self._cond.notify_all()
                    return item
                if self._closed:
                    return END_OF_STREAM
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()

    def detach(self, subscriber_id: int) -> None:
        """Remove a subscriber; its retained entries become evictable."""
        with self._cond:
            if self._states.pop(subscriber_id, None) is not None:
                self._evict_consumed()
                self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # publisher side
    # ------------------------------------------------------------------ #
    def publish(self, item: Any, update: Optional[Callable[[Any], None]] = None) -> bool:
        """Deliver one element to every subscriber.

        ``update`` (the materialized-cache maintenance hook) runs under the
        hub lock for **every** element — including ones a policy drops or
        that no subscriber will read — immediately before the ring append,
        so an ``attach`` snapshot can never observe cache and ring out of
        step.  Returns whether the element entered the ring.
        """
        with self._cond:
            while True:
                if self._closed:
                    return False
                live = [
                    state.cursor
                    for state in self._states.values()
                    if not state.disconnected
                ]
                if not live:
                    # Nobody is reading: maintain the cache (late joiners
                    # recover through snapshots) and keep the ring empty.
                    if update is not None:
                        update(item)
                    self._ring.clear()
                    return False
                self._evict_consumed()
                if len(self._ring) < self._capacity:
                    break
                if self._policy == "drop_provisional":
                    if self._evict_droppable():
                        continue
                    if droppable(item):
                        if update is not None:
                            update(item)
                        self.dropped_provisional += 1
                        return False
                    self.publish_blocks += 1
                    self._cond.wait()
                elif self._policy == "disconnect":
                    self._disconnect_slowest()
                else:  # block
                    self.publish_blocks += 1
                    self._cond.wait()
            if update is not None:
                update(item)
            self._ring.append((self._next_seq, item))
            self._next_seq += 1
            self.published += 1
            if self._sampler is not None:
                trace_id = self._sampler.sample()
                if trace_id is not None:
                    sequence = self._next_seq - 1
                    now = time.perf_counter()
                    span = self._tracer.record(
                        "hub_publish", trace_id, None, now, now,
                        seq=sequence, ring=len(self._ring),
                    )
                    self._traced[sequence] = (trace_id, span)
                    while len(self._traced) > _TRACED_SEQ_LIMIT:
                        del self._traced[next(iter(self._traced))]
            if len(self._ring) > self.max_ring:
                self.max_ring = len(self._ring)
            self._cond.notify_all()
            return True

    def close(self) -> None:
        """No further elements; readers drain the ring then see the end.

        Also unblocks publishers parked on a full ring (their publish
        returns ``False``), so closing is always safe during shutdown.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # internals (lock held)
    # ------------------------------------------------------------------ #
    def _first_at_or_after(self, cursor: int) -> Optional[Tuple[int, Any]]:
        for entry in self._ring:
            if entry[0] >= cursor:
                return entry
        return None

    def _evict_consumed(self) -> None:
        live: List[int] = [
            state.cursor for state in self._states.values() if not state.disconnected
        ]
        if not live:
            self._ring.clear()
            return
        floor = min(live)
        while self._ring and self._ring[0][0] < floor:
            self._ring.popleft()

    def _evict_droppable(self) -> bool:
        for index, (_sequence, item) in enumerate(self._ring):
            if droppable(item):
                del self._ring[index]
                self.dropped_provisional += 1
                return True
        return False

    def _disconnect_slowest(self) -> None:
        live = {
            subscriber_id: state
            for subscriber_id, state in self._states.items()
            if not state.disconnected
        }
        if not live:
            return
        floor = min(state.cursor for state in live.values())
        for state in live.values():
            if state.cursor == floor:
                state.disconnected = True
                self.disconnects += 1
        self._evict_consumed()
        self._cond.notify_all()
