"""Standing-query registry: lifecycle, shared plan groups, subscriptions.

:class:`StandingQueryService` is the serving layer's core object.  Clients
**register** named queries (node specs against catalogued streams),
**subscribe** to them (optionally receiving the materialized snapshot
first), and **detach**; the service owns everything in between:

* **Lifecycle** — a standing query is idle until its first subscriber
  arrives, runs while any subscriber (of its plan group) is attached, and
  stops — immediately or after ``linger_seconds`` — once the last one
  detaches.  A finite replay also settles on its own, closing the hubs.
* **Shared plan groups** — when a query starts, the service gathers every
  idle registered query that transitively shares a structural subplan with
  it (:mod:`repro.serve.subplan`) and launches them as **one** merged
  :class:`~repro.dataflow.DataflowGraph`: a subplan referenced by Q queries
  is one physical operator set — same worker instances, same channels, same
  per-key hash-cons probability tables
  (:meth:`~repro.dataflow.operators.RevisionJoin.maintainer`).  One query's
  sink may be another's interior node; its tap observes the shared node's
  live output either way.
* **Fan-out** — each member query owns a :class:`~repro.serve.hub.FanoutHub`
  and a :class:`~repro.serve.cache.ResultCache`; the group taps each sink
  node, min-merges its per-partition watermarks, and publishes every element
  to the member hubs with the cache update applied atomically.

Execution uses the in-process transports (taps are callables), defaulting
to ``threads`` so hub backpressure under the ``block`` policy transfers to
the graph workers and, transitively, the sources.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ..dataflow.executor import run_graph
from ..dataflow.graph import DataflowGraph, NodeSpec
from ..dataflow.query import IN_PROCESS_BACKENDS, DataflowQuery
from ..relation import TPTuple
from ..runtime import ChannelWatermarks
from ..stream.elements import Watermark
from ..options import ExecutionOptions
from .cache import ResultCache
from .hub import POLICIES, FanoutHub, HubSubscription
from .subplan import SubplanRegistry


class ServeError(RuntimeError):
    """Raised on serving-layer misuse (unknown names, double registration)."""


class StandingQuery:
    """One registered standing query and its serving state."""

    def __init__(self, name: str, query: DataflowQuery, canonical: Dict[str, str]) -> None:
        self.name = name
        self.query = query
        #: Own node name → canonical subplan name (:class:`SubplanRegistry`).
        self.canonical = canonical
        self.hub: Optional[FanoutHub] = None
        self.cache: ResultCache = ResultCache()
        self.subscribers = 0
        self.group: Optional["PlanGroup"] = None

    @property
    def sink_canonical(self) -> str:
        """Canonical name of this query's sink node in the merged plan."""
        return self.canonical[self.query.graph.sink]


class PlanGroup:
    """One merged execution of a structural-sharing closure of queries."""

    def __init__(
        self,
        members: Sequence[StandingQuery],
        graph: DataflowGraph,
        config: ExecutionOptions,
        transport: str,
        merge_seed: Optional[int],
    ) -> None:
        self.members = list(members)
        self.graph = graph
        self.config = config
        self.transport = transport
        self.merge_seed = merge_seed
        #: Live/final worker metrics for this group's run (populated only
        #: when the shared config enables metrics; ``None`` otherwise).
        self.collector = None
        if getattr(config, "metrics", False):
            from ..obs.collector import MetricsCollector

            self.collector = MetricsCollector()
        #: Live/final span timelines for this group's run (populated only
        #: when the shared config enables tracing; ``None`` otherwise).
        self.trace_collector = None
        if getattr(config, "trace", False):
            from ..obs.trace import TraceCollector

            self.trace_collector = TraceCollector()
        self.cancel = threading.Event()
        self.finished = threading.Event()
        self.failure: Optional[BaseException] = None
        self.subscribers = 0
        #: Canonical node name → operator instances (one per partition),
        #: collected by start-up probes; the sharing assertions read this.
        self.operators: Dict[str, List] = {}
        self._operators_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._linger_timer: Optional[threading.Timer] = None

    @property
    def names(self) -> List[str]:
        return [member.name for member in self.members]

    def start(self) -> None:
        """Tap every member sink, probe every node, run in a daemon thread."""
        node_index = {name: idx for idx, name in enumerate(self.graph.node_names)}
        by_sink: Dict[str, List[StandingQuery]] = {}
        for member in self.members:
            by_sink.setdefault(member.sink_canonical, []).append(member)
        taps = {
            sink: self._make_tap(node_index[sink], self.graph.partitions_of(sink), records)
            for sink, records in by_sink.items()
        }
        probes = {name: self._make_probe(name) for name in self.graph.node_names}
        self._thread = threading.Thread(
            target=self._run,
            args=(taps, probes),
            name=f"serve-group-{'+'.join(self.names)}",
            daemon=True,
        )
        self._thread.start()

    def _make_tap(self, sink_index: int, partitions: int, records: List[StandingQuery]):
        # One watermark tracker per tapped node, shared by every member it
        # serves: per-partition sink watermarks min-merge into the node's
        # true output frontier before fan-out.
        tracker = ChannelWatermarks(
            [("node", sink_index, partition) for partition in range(partitions)]
        )
        tracker_lock = threading.Lock()

        def tap(channel_id, element) -> None:
            if isinstance(element, Watermark):
                with tracker_lock:
                    merged = tracker.update(channel_id, element.value)
                if merged is None:
                    return
                element = Watermark(merged)
            for record in records:
                record.hub.publish(element, update=record.cache.apply)

        return tap

    def _make_probe(self, name: str):
        def probe(_channel_id, join) -> None:
            with self._operators_lock:
                self.operators.setdefault(name, []).append(join)

        return probe

    def _run(self, taps, probes) -> None:
        try:
            run_graph(
                self.graph,
                self.config,
                self.merge_seed,
                transport=self.transport,
                taps=taps,
                probes=probes,
                cancel=self.cancel,
                collector=self.collector,
                trace_collector=self.trace_collector,
            )
        except BaseException as error:  # noqa: BLE001 - surfaced via failure
            self.failure = error
        finally:
            for member in self.members:
                if member.hub is not None:
                    member.hub.close()
            self.finished.set()

    def stop(self) -> None:
        """Cancel cooperatively and close the member hubs.

        Closing the hubs first guarantees progress: a publisher parked on a
        full ring (``block`` policy, stalled subscriber) wakes and returns,
        so the graph always settles over what was already ingested.
        """
        timer = self._linger_timer
        if timer is not None:
            timer.cancel()
            self._linger_timer = None
        self.cancel.set()
        for member in self.members:
            if member.hub is not None:
                member.hub.close()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the group's run thread; returns whether it finished."""
        if self._thread is not None:
            self._thread.join(timeout)
        return self.finished.is_set()

    def schedule_linger_stop(self, seconds: float, callback) -> None:
        timer = threading.Timer(seconds, callback)
        timer.daemon = True
        self._linger_timer = timer
        timer.start()

    def cancel_linger_stop(self) -> None:
        timer = self._linger_timer
        if timer is not None:
            timer.cancel()
            self._linger_timer = None


class ServingSubscription:
    """A service-level subscription: hub cursor + detach bookkeeping."""

    def __init__(
        self, service: "StandingQueryService", record: StandingQuery,
        group: PlanGroup, inner: HubSubscription,
    ) -> None:
        self._service = service
        self._record = record
        self._group = group
        self._inner = inner
        self._closed = False

    @property
    def query_name(self) -> str:
        return self._record.name

    @property
    def snapshot(self) -> Optional[List[TPTuple]]:
        """The atomically consistent snapshot taken at subscribe time."""
        return self._inner.snapshot

    @property
    def cursor(self) -> int:
        return self._inner.cursor

    def read(self, timeout: Optional[float] = None):
        """Next element; ``END_OF_STREAM`` when done, ``None`` on timeout."""
        return self._inner.read(timeout)

    def __iter__(self) -> Iterator:
        return iter(self._inner)

    def close(self) -> None:
        """Detach from the standing query (idempotent)."""
        if not self._closed:
            self._closed = True
            self._service.detach(self)


class StandingQueryService:
    """Register / subscribe / snapshot / detach over shared plan groups.

    Args:
        catalog: the engine catalog holding the source streams (and, when it
            supports it, the standing-query namespace).
        config: execution knobs for every plan group (members share
            operators, so they necessarily share knobs); defaults to
            early-emitting so subscribers see provisional revisions.
        hub_capacity / policy: fan-out ring size and slow-subscriber policy
            (see :mod:`repro.serve.hub`).
        linger_seconds: how long a group keeps running after its last
            subscriber detaches (0 stops immediately).
        transport: in-process runtime transport (``threads`` or ``inline``).
        merge_seed: source interleaving seed forwarded to every run.
    """

    def __init__(
        self,
        catalog,
        config: Optional[ExecutionOptions] = None,
        hub_capacity: int = 256,
        policy: str = "block",
        linger_seconds: float = 0.0,
        transport: str = "threads",
        merge_seed: Optional[int] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if transport not in IN_PROCESS_BACKENDS:
            raise ValueError(
                f"serving taps the graph in-process; transport must be one "
                f"of {IN_PROCESS_BACKENDS}, got {transport!r}"
            )
        self._catalog = catalog
        self._config = config or ExecutionOptions(early_emit=True)
        self._hub_capacity = hub_capacity
        self._policy = policy
        self._linger_seconds = linger_seconds
        self._transport = transport
        self._merge_seed = merge_seed
        self._registry = SubplanRegistry(catalog)
        self._queries: Dict[str, StandingQuery] = {}
        self._lock = threading.RLock()

    @property
    def subplans(self) -> SubplanRegistry:
        return self._registry

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(
        self, name: str, nodes: Sequence[NodeSpec], replace: bool = False
    ) -> StandingQuery:
        """Register a standing query under ``name``.

        Also records it in the catalog's standing-query namespace when the
        catalog supports one, so ``EXPLAIN``/tooling can address it.
        """
        with self._lock:
            if name in self._queries:
                if not replace:
                    raise ServeError(f"standing query {name!r} already registered")
                self.unregister(name)
            query = DataflowQuery(self._catalog, nodes, self._config)
            canonical = self._registry.acquire(query.graph)
            record = StandingQuery(name, query, canonical)
            self._queries[name] = record
            if hasattr(self._catalog, "register_standing_query"):
                self._catalog.register_standing_query(name, query, replace=replace)
            return record

    def unregister(self, name: str) -> None:
        """Remove a standing query, stopping its plan group if running."""
        with self._lock:
            record = self._queries.pop(name, None)
            if record is None:
                raise ServeError(f"unknown standing query {name!r}")
            if record.group is not None and not record.group.finished.is_set():
                record.group.stop()
            self._registry.release(record.query.graph)
            if hasattr(self._catalog, "unregister_standing_query"):
                self._catalog.unregister_standing_query(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._queries)

    def lookup(self, name: str) -> StandingQuery:
        with self._lock:
            try:
                return self._queries[name]
            except KeyError:
                raise ServeError(
                    f"unknown standing query {name!r}; registered: "
                    f"{sorted(self._queries)}"
                ) from None

    # ------------------------------------------------------------------ #
    # subscription lifecycle
    # ------------------------------------------------------------------ #
    def subscribe(self, name: str, snapshot: bool = True) -> ServingSubscription:
        """Attach to a standing query, starting its plan group if idle.

        With ``snapshot`` the subscription carries the materialized state
        taken atomically with the cursor placement — the late joiner's
        snapshot + live tail equals a from-start subscriber's accumulation.
        """
        with self._lock:
            record = self.lookup(name)
            # Prepare (but do not start) the plan group first: the first
            # subscriber's cursor must be attached before any element is
            # published, or the elements preceding the attach would reach
            # only the cache and the from-start subscriber would miss them.
            started = self._prepare_group(record)
            group = record.group
            group.cancel_linger_stop()
            inner = record.hub.attach(record.cache.snapshot if snapshot else None)
            record.subscribers += 1
            group.subscribers += 1
            if started:
                group.start()
            return ServingSubscription(self, record, group, inner)

    def detach(self, subscription: ServingSubscription) -> None:
        """Release one subscription; last detach stops (or lingers) the group."""
        with self._lock:
            record = subscription._record
            group = subscription._group
            subscription._inner.close()
            record.subscribers = max(0, record.subscribers - 1)
            group.subscribers = max(0, group.subscribers - 1)
            if group.subscribers > 0 or group.finished.is_set():
                return
            if self._linger_seconds <= 0:
                group.stop()
            else:
                group.schedule_linger_stop(
                    self._linger_seconds, lambda: self._linger_expired(group)
                )

    def _linger_expired(self, group: PlanGroup) -> None:
        with self._lock:
            if group.subscribers <= 0 and not group.finished.is_set():
                group.stop()

    def snapshot(self, name: str, settled_only: bool = False) -> List[TPTuple]:
        """The standing query's current materialized state (consistent read)."""
        with self._lock:
            record = self.lookup(name)
            hub = record.hub
        if hub is None:
            return record.cache.snapshot(settled_only)
        with hub.lock:
            return record.cache.snapshot(settled_only)

    def _prepare_group(self, record: StandingQuery) -> bool:
        """Build a fresh plan group for an idle query; returns whether the
        caller must start it (after attaching the triggering subscriber)."""
        if record.group is not None and not record.group.finished.is_set():
            return False
        members = self._sharing_closure(record)
        wanted: Set[str] = set()
        for member in members:
            wanted.update(member.canonical.values())
        graph = DataflowGraph(self._catalog, self._registry.plan_nodes(wanted))
        group = PlanGroup(
            members, graph, self._config, self._transport, self._merge_seed
        )
        trace_on = getattr(self._config, "trace", False)
        for offset, member in enumerate(members):
            tracer = sampler = None
            if trace_on:
                # Hub traces are rooted at the hub — taps strip the worker
                # context — so each hub samples its own published elements
                # at the shared rate.  Ids are offset into the hub id space,
                # one disjoint block per member, so no two hubs (and no hub
                # and the driver sampler) ever share a timeline.
                from ..obs.trace import (
                    DEFAULT_TRACE_SAMPLE_RATE,
                    Tracer,
                    TraceSampler,
                )
                from .hub import HUB_TRACE_ID_BASE

                tracer = Tracer(f"hub/{member.name}")
                sampler = TraceSampler(
                    getattr(
                        self._config, "trace_sample_rate", DEFAULT_TRACE_SAMPLE_RATE
                    ),
                    first_id=HUB_TRACE_ID_BASE + offset * 100_000,
                )
            member.hub = FanoutHub(
                self._hub_capacity, self._policy, tracer=tracer, sampler=sampler
            )
            member.cache = ResultCache()
            member.group = group
        return True

    def _sharing_closure(self, record: StandingQuery) -> List[StandingQuery]:
        """Idle registered queries transitively sharing a subplan with
        ``record`` (including ``record``), in registration order."""
        idle = [
            query
            for query in self._queries.values()
            if query.group is None or query.group.finished.is_set()
        ]
        chosen: Dict[str, StandingQuery] = {record.name: record}
        reachable: Set[str] = set(record.canonical.values())
        grew = True
        while grew:
            grew = False
            for query in idle:
                if query.name in chosen:
                    continue
                names = set(query.canonical.values())
                if names & reachable:
                    chosen[query.name] = query
                    reachable |= names
                    grew = True
        return [query for query in self._queries.values() if query.name in chosen]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def operators_of(self, name: str) -> List:
        """The live operator instances behind a query's sink (per partition)."""
        with self._lock:
            record = self.lookup(name)
            if record.group is None:
                return []
            return list(record.group.operators.get(record.sink_canonical, ()))

    def shared_subplans(self) -> Set[str]:
        """Canonical subplan names currently referenced by >1 query."""
        with self._lock:
            return self._registry.shared_names()

    def explain(self, name: str) -> str:
        """Physical EXPLAIN of a standing query with ``shared=`` markers.

        Renders the query's canonical (merged-plan) nodes, so shared
        subplans appear under their canonical names; the
        ``dataflow_shared`` attribute drives the EXPLAIN annotation.
        """
        from ..engine.continuous import ContinuousScanOperator, DataflowJoinOperator
        from ..engine.explain import explain_physical

        with self._lock:
            record = self.lookup(name)
            nodes = self._registry.plan_nodes(set(record.canonical.values()))
            shared = self._registry.shared_names() & set(record.canonical.values())
        graph = DataflowGraph(self._catalog, nodes)
        scans = tuple(
            ContinuousScanOperator(self._catalog.lookup_stream(source), source)
            for source in graph.source_names
        )
        operator = DataflowJoinOperator(self._catalog, scans, nodes, self._config)
        operator.dataflow_shared = tuple(
            sorted(shared)
        )  # read by engine.explain's renderer
        return explain_physical(operator)

    def stats(self) -> Dict[str, dict]:
        """Per-query serving statistics (hub counters, cache size, state)."""
        with self._lock:
            report: Dict[str, dict] = {}
            for name, record in self._queries.items():
                hub = record.hub
                group = record.group
                report[name] = {
                    "subscribers": record.subscribers,
                    "cached_tuples": len(record.cache),
                    "last_watermark": record.cache.last_watermark,
                    "running": group is not None and not group.finished.is_set(),
                    "published": 0 if hub is None else hub.published,
                    "dropped_provisional": 0 if hub is None else hub.dropped_provisional,
                    "publish_blocks": 0 if hub is None else hub.publish_blocks,
                    "disconnects": 0 if hub is None else hub.disconnects,
                    "sink": record.sink_canonical,
                }
            return report

    def metrics(self) -> Dict[str, dict]:
        """Per-query telemetry: hub ring/cursor metrics + worker snapshots.

        Each entry carries the query's fan-out hub reading (occupancy,
        per-subscriber cursor lags, drop/block counters) and, when the
        shared config enables metrics, the plan group's aggregated worker
        view (counters summed, watermarks min-merged).  Everything is
        plain builtins, so the serve front end ships it as one JSON reply.
        """
        with self._lock:
            records = list(self._queries.items())
        report: Dict[str, dict] = {}
        for name, record in records:
            hub = record.hub
            entry: Dict[str, object] = {
                "hub": None if hub is None else hub.metrics(),
                "cursor_lags": (
                    {} if hub is None
                    else {str(k): v for k, v in hub.subscriber_lags().items()}
                ),
                "workers": None,
            }
            group = record.group
            collector = None if group is None else group.collector
            aggregate = None if collector is None else collector.aggregate()
            if aggregate is not None:
                entry["workers"] = {
                    "totals": aggregate.totals(),
                    "by_node": aggregate.by_node(),
                    "load_skew": aggregate.load_skew(),
                }
            report[name] = entry
        return report

    def trace_spans(self) -> List[dict]:
        """Every span across running plan groups and member fan-out hubs.

        Worker/driver spans come from each group's trace collector (live
        mid-run, final after); ``hub_publish``/``cursor_advance`` spans
        from each member hub's own tracer.  Empty unless the shared config
        enables tracing.  Spans carry unique ids, so feeding repeated
        readings into one :class:`repro.obs.TraceAggregator` is safe.
        """
        with self._lock:
            records = list(self._queries.values())
        groups = {}
        spans: List[dict] = []
        for record in records:
            group = record.group
            if group is not None and group.trace_collector is not None:
                groups[id(group)] = group
            if record.hub is not None:
                spans.extend(record.hub.trace_spans())
        for group in groups.values():
            spans.extend(group.trace_collector.spans())
        return spans

    def worker_snapshots(self) -> List[dict]:
        """Raw labelled worker snapshots across every running plan group.

        Deduplicated by group (members share one run), relabelled with the
        group's member names so a Prometheus scrape can tell groups apart.
        """
        with self._lock:
            groups = {
                id(record.group): record.group
                for record in self._queries.values()
                if record.group is not None and record.group.collector is not None
            }
        snapshots: List[dict] = []
        for group in groups.values():
            queries = "+".join(group.names)
            for snapshot in group.collector.snapshots():
                labels = dict(snapshot.get("labels", {}))
                labels["queries"] = queries
                labels["worker"] = f"{queries}/{labels.get('worker', '')}"
                snapshots.append({**snapshot, "labels": labels})
        return snapshots

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def stop(self, name: str, join_timeout: float = 10.0) -> None:
        """Stop one query's plan group (all member queries stop with it)."""
        with self._lock:
            record = self.lookup(name)
            group = record.group
        if group is not None and not group.finished.is_set():
            group.stop()
            group.join(join_timeout)

    def shutdown(self, join_timeout: float = 10.0) -> None:
        """Stop every running plan group and wait for their threads."""
        with self._lock:
            groups = {
                id(record.group): record.group
                for record in self._queries.values()
                if record.group is not None
            }
        for group in groups.values():
            if not group.finished.is_set():
                group.stop()
        for group in groups.values():
            group.join(join_timeout)
