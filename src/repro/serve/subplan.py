"""Structural subplan hashing and the reference-counted subplan registry.

Two standing queries that join the same streams the same way should pay the
Table-II join cost once.  The registry makes that sharing *structural*: a
node's identity is the recursive key of what it computes —

    ("node", kind, left_key, right_key, θ, partitions)

where an input key is ``("stream", name)`` for a catalogued stream and the
producing node's own structural key otherwise.  Node *names* never enter the
key, so two graphs that spell the same plan with different names collapse
onto one entry — and so do structurally identical siblings *within* one
graph (common-subexpression elimination falls out for free).

Each distinct key owns one reference-counted :class:`SubplanEntry` holding a
*canonical* :class:`~repro.dataflow.NodeSpec` whose inputs are themselves
canonical names.  A plan group (:mod:`repro.serve.registry`) executes the
entries' specs directly: overlapping standing queries become one merged
:class:`~repro.dataflow.DataflowGraph` in which every shared subplan is one
physical operator set — same workers, same channels, same per-key hash-cons
probability tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..dataflow.graph import DataflowGraph, NodeSpec

#: A structural key: nested tuples of primitives, hashable and order-stable.
StructuralKey = Tuple


def graph_structural_keys(graph: DataflowGraph) -> Dict[str, StructuralKey]:
    """Structural key of every node of ``graph``, keyed by node name.

    One pass in topological order: a node's key embeds its inputs' keys, and
    inputs always precede uses, so each key is computed exactly once.
    """
    keys: Dict[str, StructuralKey] = {}
    for spec in graph.nodes:
        left = keys.get(spec.left, ("stream", spec.left))
        right = keys.get(spec.right, ("stream", spec.right))
        keys[spec.name] = (
            "node",
            spec.kind,
            left,
            right,
            tuple(spec.on),
            spec.partitions,
        )
    return keys


def structural_key(graph: DataflowGraph, name: str) -> StructuralKey:
    """Structural key of one node (or ``("stream", name)`` for a source)."""
    keys = graph_structural_keys(graph)
    if name in keys:
        return keys[name]
    if name in graph.source_names:
        return ("stream", name)
    raise KeyError(f"unknown graph node or source {name!r}")


@dataclass
class SubplanEntry:
    """One distinct subplan: canonical spec plus its reference count."""

    key: StructuralKey
    name: str
    spec: NodeSpec
    refcount: int = 0


class SubplanRegistry:
    """Reference-counted registry of structurally distinct subplans.

    ``acquire`` interns every node of a query graph and returns the
    node-name → canonical-name mapping; ``release`` is its exact inverse.
    Entries are kept in first-acquisition order, which is a valid
    topological order of the merged plan: each graph is topological and a
    node's inputs are interned before the node itself.

    Args:
        catalog: optional; when given, canonical names are additionally
            checked against registered stream names (the same clash rule
            :class:`~repro.dataflow.DataflowGraph` enforces).
    """

    def __init__(self, catalog=None) -> None:
        self._catalog = catalog
        self._by_key: Dict[StructuralKey, SubplanEntry] = {}
        self._order: List[StructuralKey] = []
        self._names: Set[str] = set()

    def __len__(self) -> int:
        return len(self._by_key)

    def acquire(self, graph: DataflowGraph) -> Dict[str, str]:
        """Intern every node of ``graph``; returns name → canonical name."""
        keys = graph_structural_keys(graph)
        mapping: Dict[str, str] = {}
        for spec in graph.nodes:
            key = keys[spec.name]
            entry = self._by_key.get(key)
            if entry is None:
                name = self._fresh_name(spec.name)
                entry = SubplanEntry(
                    key=key,
                    name=name,
                    spec=NodeSpec(
                        name=name,
                        kind=spec.kind,
                        left=mapping.get(spec.left, spec.left),
                        right=mapping.get(spec.right, spec.right),
                        on=tuple(spec.on),
                        partitions=spec.partitions,
                    ),
                )
                self._by_key[key] = entry
                self._order.append(key)
                self._names.add(name)
            entry.refcount += 1
            mapping[spec.name] = entry.name
        return mapping

    def release(self, graph: DataflowGraph) -> None:
        """Drop one reference per node of ``graph``; removes dead entries."""
        keys = graph_structural_keys(graph)
        for spec in graph.nodes:
            entry = self._by_key.get(keys[spec.name])
            if entry is None:
                continue
            entry.refcount -= 1
            if entry.refcount <= 0:
                del self._by_key[entry.key]
                self._order.remove(entry.key)
                self._names.discard(entry.name)

    def _fresh_name(self, base: str) -> str:
        candidate = base
        suffix = 2
        while candidate in self._names or (
            self._catalog is not None
            and hasattr(self._catalog, "is_stream")
            and self._catalog.is_stream(candidate)
        ):
            candidate = f"{base}~{suffix}"
            suffix += 1
        return candidate

    # ------------------------------------------------------------------ #
    # plan assembly and sharing queries
    # ------------------------------------------------------------------ #
    def plan_nodes(self, canonical_names: Iterable[str]) -> List[NodeSpec]:
        """The canonical specs of ``canonical_names``, in topological order."""
        wanted = set(canonical_names)
        return [
            self._by_key[key].spec
            for key in self._order
            if self._by_key[key].name in wanted
        ]

    def entry_of(self, canonical_name: str) -> Optional[SubplanEntry]:
        """The live entry holding ``canonical_name`` (``None`` when absent)."""
        for entry in self._by_key.values():
            if entry.name == canonical_name:
                return entry
        return None

    def refcount_of(self, canonical_name: str) -> int:
        """Reference count of one canonical subplan (0 when absent)."""
        entry = self.entry_of(canonical_name)
        return 0 if entry is None else entry.refcount

    def shared_names(self) -> Set[str]:
        """Canonical names referenced more than once — the ``[shared]`` set."""
        return {
            entry.name for entry in self._by_key.values() if entry.refcount > 1
        }
