"""The asyncio front-end: standing queries over newline-delimited JSON/TCP.

``python -m repro.serve --listen HOST:PORT`` serves a
:class:`~repro.serve.registry.StandingQueryService` to TCP clients.  Each
request and response is one JSON object per line.  Requests:

* ``{"op": "register", "name": N, "nodes": [...], "replace": false}`` —
  node objects mirror :class:`~repro.dataflow.NodeSpec`
  (``name``/``kind``/``left``/``right``/``on``/``partitions``);
* ``{"op": "subscribe", "name": N, "snapshot": true}`` — takes over the
  connection: the server acks, optionally sends the materialized snapshot,
  then streams ``revision``/``watermark`` lines until ``end``.  A
  ``{"op": "detach"}`` line (or closing the connection) detaches;
* ``{"op": "snapshot", "name": N}`` — one consistent materialized snapshot;
* ``{"op": "explain", "name": N}`` — the physical plan with ``shared=``
  markers;
* ``{"op": "list"}`` — registered standing-query names;
* ``{"op": "stats"}`` — one ``stats`` reply: per-query serving counters
  (:meth:`~repro.serve.registry.StandingQueryService.stats`) plus live
  telemetry (hub occupancy, per-subscriber cursor lags, worker metrics —
  :meth:`~repro.serve.registry.StandingQueryService.metrics`);
* ``{"op": "trace"}`` — one ``trace`` reply: every span the service holds
  (worker/driver timelines plus hub publish/cursor spans) when the server
  runs with tracing enabled (``--trace``); repeated readings may overlap —
  span ids are unique, so an aggregator deduplicates them;
* ``{"op": "watch", "interval": S}`` — takes over the connection: the
  server acks, then emits one ``stats`` line every ``interval`` seconds
  until a ``{"op": "detach"}`` line arrives or the client disconnects.

TP tuples travel in the compact primitive encoding of
:mod:`repro.parallel.serialize` (``[fact, lineage, start, end, p]``), so
the NDJSON protocol and the binary runtime codecs share one tuple wire
shape.  Watermark values may be ``Infinity`` — Python's ``json`` emits and
accepts it (the protocol is NDJSON between Python peers, not strict JSON).

The serving runtime is threaded; the bridge into asyncio is
``run_in_executor`` around the hub's blocking cursor reads, with a short
read timeout so a vanished client is noticed promptly.
"""

from __future__ import annotations

import asyncio
import json
import logging
import socket
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..dataflow.graph import NodeSpec
from ..dataflow.revision import Revision, RevisionKind
from ..parallel.serialize import decode_tuple, encode_tuple
from ..relation import TPTuple
from ..stream.elements import Watermark
from .hub import END_OF_STREAM, SlowSubscriberDisconnected
from .registry import ServeError, ServingSubscription, StandingQueryService

_LOGGER = logging.getLogger(__name__)

#: How often the streaming loop wakes to notice a detach or dead client.
_READ_POLL_SECONDS = 0.25


# --------------------------------------------------------------------------- #
# wire helpers (shared by server and client)
# --------------------------------------------------------------------------- #
def node_payload(spec: NodeSpec) -> dict:
    """A :class:`NodeSpec` as a JSON-ready object."""
    return {
        "name": spec.name,
        "kind": spec.kind,
        "left": spec.left,
        "right": spec.right,
        "on": [list(pair) for pair in spec.on],
        "partitions": spec.partitions,
    }


def node_from_payload(payload: dict) -> NodeSpec:
    """Rebuild a :class:`NodeSpec` from its wire object."""
    return NodeSpec(
        name=payload["name"],
        kind=payload["kind"],
        left=payload["left"],
        right=payload["right"],
        on=tuple(tuple(pair) for pair in payload.get("on", ())),
        partitions=int(payload.get("partitions", 1)),
    )


def element_payload(element: Any) -> dict:
    """One hub element (revision or watermark) as a JSON-ready object."""
    if isinstance(element, Watermark):
        return {"type": "watermark", "value": element.value}
    if isinstance(element, Revision):
        return {
            "type": "revision",
            "kind": element.kind.value,
            "provisional": element.provisional,
            "tuple": encode_tuple(element.tuple),
        }
    raise TypeError(f"cannot encode hub element {element!r}")


def element_from_payload(payload: dict) -> Any:
    """Rebuild a hub element from its wire object."""
    if payload["type"] == "watermark":
        return Watermark(payload["value"])
    if payload["type"] == "revision":
        return Revision(
            RevisionKind(payload["kind"]),
            decode_tuple(payload["tuple"]),
            provisional=bool(payload.get("provisional", False)),
        )
    raise ValueError(f"unknown element payload type {payload['type']!r}")


def tuples_payload(tuples: Sequence[TPTuple]) -> List[tuple]:
    return [encode_tuple(tp_tuple) for tp_tuple in tuples]


def tuples_from_payload(codes: Sequence) -> List[TPTuple]:
    return [decode_tuple(code) for code in codes]


# --------------------------------------------------------------------------- #
# server
# --------------------------------------------------------------------------- #
class ServeServer:
    """NDJSON-over-TCP access to one :class:`StandingQueryService`."""

    def __init__(
        self, service: StandingQueryService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def service(self) -> StandingQueryService:
        return self._service

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        return self._port

    async def start(self) -> None:
        """Bind and start accepting; prints one readiness line."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        bound = self._server.sockets[0].getsockname()
        self._host, self._port = bound[0], bound[1]
        # The message bytes are a readiness needle clients grep for; the
        # entrypoint's message-only stdout handler keeps them unchanged.
        _LOGGER.info("repro serve listening on %s:%s", self._host, self._port)

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    await self._send(
                        writer, {"type": "error", "message": f"bad JSON: {error}"}
                    )
                    continue
                try:
                    finished = await self._dispatch(request, reader, writer)
                except (ServeError, ValueError, KeyError, TypeError) as error:
                    await self._send(
                        writer, {"type": "error", "message": str(error)}
                    )
                    continue
                if finished:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(
        self,
        request: dict,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        op = request.get("op")
        if op == "register":
            nodes = [node_from_payload(node) for node in request["nodes"]]
            self._service.register(
                request["name"], nodes, replace=bool(request.get("replace", False))
            )
            await self._send(
                writer, {"type": "ok", "op": "register", "name": request["name"]}
            )
            return False
        if op == "list":
            await self._send(
                writer, {"type": "ok", "op": "list", "queries": self._service.names()}
            )
            return False
        if op == "snapshot":
            loop = asyncio.get_running_loop()
            tuples = await loop.run_in_executor(
                None, self._service.snapshot, request["name"]
            )
            await self._send(
                writer,
                {
                    "type": "snapshot",
                    "name": request["name"],
                    "tuples": tuples_payload(tuples),
                },
            )
            return False
        if op == "explain":
            plan = self._service.explain(request["name"])
            await self._send(
                writer,
                {"type": "ok", "op": "explain", "name": request["name"], "plan": plan},
            )
            return False
        if op == "stats":
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(None, self._stats_payload)
            payload["type"] = "stats"
            await self._send(writer, payload)
            return False
        if op == "trace":
            loop = asyncio.get_running_loop()
            spans = await loop.run_in_executor(None, self._service.trace_spans)
            await self._send(writer, {"type": "trace", "spans": spans})
            return False
        if op == "watch":
            await self._watch_stats(request, reader, writer)
            return True  # the watch consumed the connection
        if op == "subscribe":
            await self._stream(request, reader, writer)
            return True  # the subscription consumed the connection
        if op == "detach":
            raise ServeError("no active subscription on this connection")
        raise ServeError(f"unknown op {op!r}")

    def _stats_payload(self) -> Dict[str, Any]:
        return {
            "queries": self._service.stats(),
            "metrics": self._service.metrics(),
        }

    async def _watch_stats(
        self,
        request: dict,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        interval = max(float(request.get("interval", 1.0)), 0.05)
        stop = asyncio.Event()

        async def watch_input() -> None:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    inner = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if inner.get("op") == "detach":
                    break
            stop.set()

        watcher = asyncio.ensure_future(watch_input())
        try:
            await self._send(
                writer, {"type": "ok", "op": "watch", "interval": interval}
            )
            while not stop.is_set():
                payload = await loop.run_in_executor(None, self._stats_payload)
                payload["type"] = "stats"
                await self._send(writer, payload)
                try:
                    await asyncio.wait_for(stop.wait(), interval)
                except asyncio.TimeoutError:
                    pass
            await self._send(writer, {"type": "end", "op": "watch", "reason": "detached"})
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            _LOGGER.debug("watch client vanished mid-stream")
        finally:
            watcher.cancel()

    async def _stream(
        self,
        request: dict,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        name = request["name"]
        want_snapshot = bool(request.get("snapshot", True))
        subscription: ServingSubscription = await loop.run_in_executor(
            None, lambda: self._service.subscribe(name, snapshot=want_snapshot)
        )
        await self._send(writer, {"type": "ok", "op": "subscribe", "name": name})
        if subscription.snapshot is not None:
            await self._send(
                writer,
                {
                    "type": "snapshot",
                    "name": name,
                    "tuples": tuples_payload(subscription.snapshot),
                },
            )
        watcher = asyncio.ensure_future(self._watch_for_detach(reader, subscription))
        try:
            while True:
                try:
                    item = await loop.run_in_executor(
                        None, subscription.read, _READ_POLL_SECONDS
                    )
                except ValueError:
                    # Detached (client asked, or the connection vanished).
                    await self._send(writer, {"type": "end", "name": name, "reason": "detached"})
                    return
                except SlowSubscriberDisconnected as error:
                    await self._send(
                        writer,
                        {"type": "end", "name": name, "reason": "disconnected",
                         "message": str(error)},
                    )
                    return
                if item is None:
                    continue
                if item is END_OF_STREAM:
                    await self._send(writer, {"type": "end", "name": name, "reason": "settled"})
                    return
                payload = element_payload(item)
                payload["name"] = name
                await self._send(writer, payload)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            watcher.cancel()
            subscription.close()

    async def _watch_for_detach(
        self, reader: asyncio.StreamReader, subscription: ServingSubscription
    ) -> None:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
            except json.JSONDecodeError:
                continue
            if request.get("op") == "detach":
                break
        # Closing the subscription makes the streaming loop's next read
        # raise ValueError, which ends the stream cleanly.
        subscription.close()


# --------------------------------------------------------------------------- #
# blocking client
# --------------------------------------------------------------------------- #
class ServeClient:
    """A small blocking NDJSON client (tests, benchmarks, the CLI)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def send(self, payload: dict) -> None:
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()

    def recv(self) -> Optional[dict]:
        """One response line (``None`` on EOF); raises on ``error`` lines."""
        line = self._file.readline()
        if not line:
            return None
        response = json.loads(line)
        if response.get("type") == "error":
            raise ServeError(response.get("message", "server error"))
        return response

    def request(self, payload: dict) -> dict:
        self.send(payload)
        response = self.recv()
        if response is None:
            raise ServeError("server closed the connection")
        return response

    # convenience wrappers ---------------------------------------------- #
    def register(
        self, name: str, nodes: Sequence[NodeSpec], replace: bool = False
    ) -> dict:
        return self.request(
            {
                "op": "register",
                "name": name,
                "nodes": [node_payload(spec) for spec in nodes],
                "replace": replace,
            }
        )

    def list_queries(self) -> List[str]:
        return self.request({"op": "list"})["queries"]

    def snapshot(self, name: str) -> List[TPTuple]:
        return tuples_from_payload(self.request({"op": "snapshot", "name": name})["tuples"])

    def explain(self, name: str) -> str:
        return self.request({"op": "explain", "name": name})["plan"]

    def stats(self) -> dict:
        """One serving-stats reading: per-query counters + live telemetry."""
        return self.request({"op": "stats"})

    def trace(self) -> List[dict]:
        """Every span the service currently holds (live mid-run reading).

        Feed repeated readings into one :class:`repro.obs.TraceAggregator`
        — spans carry unique ids, so overlap between readings is safe.
        """
        return self.request({"op": "trace"})["spans"]

    def watch(self, interval: float = 1.0) -> Iterator[dict]:
        """Yield periodic ``stats`` payloads until :meth:`detach` or EOF.

        After this call the connection belongs to the watch; send
        ``detach`` (from another thread, or between yields) to stop, then
        drain until the generator ends.
        """
        response = self.request({"op": "watch", "interval": interval})
        assert response.get("op") == "watch", response
        while True:
            message = self.recv()
            if message is None:
                return
            if message.get("type") == "end":
                return
            yield message

    def subscribe(self, name: str, snapshot: bool = True) -> Optional[List[TPTuple]]:
        """Start a subscription on this connection; returns the snapshot.

        After this call the connection belongs to the stream: iterate
        :meth:`events` until the ``end`` message.
        """
        response = self.request({"op": "subscribe", "name": name, "snapshot": snapshot})
        assert response.get("op") == "subscribe", response
        if not snapshot:
            return None
        snapshot_message = self.recv()
        if snapshot_message is None:
            raise ServeError("server closed the connection before the snapshot")
        return tuples_from_payload(snapshot_message["tuples"])

    def events(self) -> Iterator[dict]:
        """Stream messages after :meth:`subscribe`, ending on ``end``/EOF."""
        while True:
            message = self.recv()
            if message is None:
                return
            yield message
            if message.get("type") == "end":
                return

    def detach(self) -> None:
        self.send({"op": "detach"})
