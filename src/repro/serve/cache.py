"""The materialized result cache of one standing query.

A subscriber that attaches mid-run must not force a replay: the serving
layer maintains, per standing query, the current net output state — exactly
the dictionary a from-start subscriber would hold after applying every
Emit/Retract/Refine it received.  A late joiner gets this snapshot plus the
live tail from its hub cursor; because the hub applies cache updates and
ring appends under one lock (:meth:`repro.serve.hub.FanoutHub.publish`),
snapshot + tail composes to the identical final state.

The cache is keyed by :meth:`~repro.relation.TPTuple.key` — the same key
the settled-output merge uses — and snapshots return tuples in the
canonical deterministic order shared with
:func:`repro.parallel.batch.canonical_order`, so two independently
accumulated states compare equal element-for-element.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..dataflow.revision import Revision, RevisionKind
from ..parallel.batch import canonical_order
from ..relation import TPTuple
from ..stream.elements import Watermark


class ResultCache:
    """Net output state of one revision stream, maintained incrementally."""

    __slots__ = (
        "_entries",
        "last_watermark",
        "revisions_applied",
        "retractions_applied",
    )

    def __init__(self) -> None:
        self._entries: Dict[Tuple, Tuple[TPTuple, bool]] = {}
        self.last_watermark = float("-inf")
        self.revisions_applied = 0
        self.retractions_applied = 0

    def __len__(self) -> int:
        return len(self._entries)

    def apply(self, element: Any) -> None:
        """Fold one hub element (revision or watermark) into the state.

        Emit and Refine both upsert — a refine replaces the published tuple
        under the same key; Retract removes it.  Watermarks advance the
        query's progress frontier (monotone; regressions are ignored).
        """
        if isinstance(element, Watermark):
            if element.value > self.last_watermark:
                self.last_watermark = element.value
                self._settle_passed(element.value)
            return
        if not isinstance(element, Revision):
            raise TypeError(f"cannot cache element {element!r}")
        self.revisions_applied += 1
        key = element.tuple.key()
        if element.kind is RevisionKind.RETRACT:
            self._entries.pop(key, None)
            self.retractions_applied += 1
        else:
            self._entries[key] = (element.tuple, element.provisional)

    def _settle_passed(self, watermark: float) -> None:
        """Promote provisional entries the watermark has passed.

        A group finalizes once the node's output watermark reaches its
        windows' ends, but the finalization diff republishes only *changed*
        tuples — a provisional tuple that was already correct is never
        re-emitted.  Stale ones are retracted before the watermark advance
        (taps observe dispatch order), so any provisional entry whose
        interval end the watermark has passed is in fact settled.
        """
        for key, (tp_tuple, provisional) in self._entries.items():
            if provisional and tp_tuple.interval.end <= watermark:
                self._entries[key] = (tp_tuple, False)

    def snapshot(self, settled_only: bool = False) -> List[TPTuple]:
        """The current net state, in canonical deterministic order.

        ``settled_only`` filters out tuples whose latest revision was still
        provisional — the view a watermark-only consumer would hold.
        """
        return canonical_order(
            [
                tp_tuple
                for tp_tuple, provisional in self._entries.values()
                if not (settled_only and provisional)
            ]
        )

    def provisional_count(self) -> int:
        """How many cached tuples are still provisional."""
        return sum(1 for _tuple, provisional in self._entries.values() if provisional)
