"""Standing-query serving: named TP queries, shared subplans, fan-out.

The serving layer sits in front of the dataflow engine and turns it into a
service: clients address **named standing queries** instead of supplying
graphs, overlapping queries share operators (and their per-key hash-cons
probability tables) through a structural common-subplan registry, and every
subscriber reads the shared revision stream through a cursor over one
bounded fan-out ring instead of a private copy.

Pieces, bottom-up:

* :mod:`repro.serve.subplan` — structural hashing of
  :class:`~repro.dataflow.NodeSpec` trees and the reference-counted
  common-subplan registry behind operator sharing;
* :mod:`repro.serve.hub` — the bounded shared-ring fan-out hub with
  per-subscriber cursors and the three slow-subscriber policies
  (``block`` / ``drop_provisional`` / ``disconnect``);
* :mod:`repro.serve.cache` — the materialized result cache a standing query
  maintains from its Emit/Retract/Refine stream, so late joiners get a
  snapshot plus live tail instead of a replay;
* :mod:`repro.serve.registry` — :class:`StandingQueryService`: register /
  subscribe / snapshot / detach plus query lifecycle (start on first
  subscriber, linger, stop on last detach) over merged shared plans;
* :mod:`repro.serve.server` — the asyncio NDJSON-over-TCP front-end
  (``python -m repro.serve --listen``) bridging the threaded runtime.
"""

from .cache import ResultCache
from .hub import (
    END_OF_STREAM,
    POLICIES,
    FanoutHub,
    HubSubscription,
    SlowSubscriberDisconnected,
)
from .registry import PlanGroup, ServeError, StandingQueryService, ServingSubscription
from .server import ServeClient, ServeServer
from .subplan import SubplanRegistry, graph_structural_keys, structural_key

__all__ = [
    "END_OF_STREAM",
    "FanoutHub",
    "HubSubscription",
    "POLICIES",
    "PlanGroup",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "ServingSubscription",
    "SlowSubscriberDisconnected",
    "StandingQueryService",
    "SubplanRegistry",
    "graph_structural_keys",
    "structural_key",
]
