"""Temporal-probabilistic data model: schemas, tuples, relations, operators."""

from .errors import (
    ConstraintViolation,
    RelationError,
    SchemaError,
    UnknownAttributeError,
)
from .io import read_relation_csv, write_relation_csv, write_result_csv
from .operators import (
    difference,
    project,
    rename,
    select,
    select_eq,
    snapshot,
    timeslice,
    union,
)
from .predicates import (
    EquiJoinCondition,
    PredicateCondition,
    ThetaCondition,
    TrueCondition,
    equi_join_on,
    stable_key_hash,
    theta_or_true,
)
from .relation import TPRelation, fresh_event_names
from .schema import Schema
from .tptuple import TPTuple

__all__ = [
    "ConstraintViolation",
    "EquiJoinCondition",
    "PredicateCondition",
    "RelationError",
    "Schema",
    "SchemaError",
    "TPRelation",
    "TPTuple",
    "ThetaCondition",
    "TrueCondition",
    "UnknownAttributeError",
    "difference",
    "equi_join_on",
    "stable_key_hash",
    "fresh_event_names",
    "project",
    "read_relation_csv",
    "rename",
    "select",
    "select_eq",
    "theta_or_true",
    "snapshot",
    "timeslice",
    "union",
    "write_relation_csv",
    "write_result_csv",
]
