"""Non-join temporal-probabilistic operators.

These are the unary and set operators of the TP algebra that the paper's
predecessor work ("Supporting set operations in temporal-probabilistic
databases", ICDE 2018) defines and that a usable TP library needs around the
joins: selection, projection, timeslice, union and difference.  The join
operators — the paper's actual contribution — live in :mod:`repro.core.joins`.

Semantics follow the standard possible-worlds interpretation:

* **selection** keeps tuples whose fact satisfies a predicate; lineage,
  interval and probability are unchanged.
* **projection** may map distinct facts to the same projected fact; at every
  time point the projected fact is true when *any* of its contributing
  tuples is true, so contributing lineages are OR-ed per maximal interval
  with a constant contributor set.
* **timeslice** restricts every tuple to its intersection with a query
  interval.
* **union** concatenates two relations over a merged event space; tuples
  with the same fact and overlapping intervals get their lineages OR-ed on
  the overlap (per-segment), keeping the result duplicate-free.
* **difference** of ``r`` minus ``s`` keeps, per time point, ``r``'s fact
  with lineage ``λr ∧ ¬λs`` when a matching ``s`` tuple is valid and ``λr``
  otherwise — i.e. it is the fact-equality special case of the paper's anti
  join, and the implementation simply delegates to it.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..lineage import disjunction_of
from ..temporal import Interval, partition_by_validity
from .relation import TPRelation
from .tptuple import TPTuple


def select(relation: TPRelation, predicate: Callable[[tuple], bool]) -> TPRelation:
    """Selection on the fact attributes (σ)."""
    kept = [t for t in relation if predicate(t.fact)]
    return relation.derived(relation.schema, kept, name=f"select({relation.name})")


def select_eq(relation: TPRelation, attribute: str, value) -> TPRelation:
    """Selection by equality on a single attribute."""
    index = relation.schema.index(attribute)
    return select(relation, lambda fact: fact[index] == value)


def timeslice(relation: TPRelation, window: Interval) -> TPRelation:
    """Restrict every tuple to its intersection with ``window`` (τ)."""
    sliced: list[TPTuple] = []
    for tp_tuple in relation:
        overlap = tp_tuple.interval.intersect(window)
        if overlap is not None:
            sliced.append(tp_tuple.with_interval(overlap))
    return relation.derived(relation.schema, sliced, name=f"timeslice({relation.name})")


def project(relation: TPRelation, attributes: Iterable[str]) -> TPRelation:
    """Projection onto a subset of attributes (π) with lineage disjunction.

    Tuples that collapse onto the same projected fact have their lineages
    OR-ed over every maximal sub-interval with a constant set of contributing
    tuples, so the result is a valid (duplicate-free) TP relation.
    """
    names = list(attributes)
    target = relation.schema.project(names)
    indexes = [relation.schema.index(name) for name in names]

    by_fact: dict[tuple, list[TPTuple]] = {}
    for tp_tuple in relation:
        projected_fact = tuple(tp_tuple.fact[i] for i in indexes)
        by_fact.setdefault(projected_fact, []).append(tp_tuple)

    output: list[TPTuple] = []
    for projected_fact, group in by_fact.items():
        intervals = [t.interval for t in group]
        frame = Interval(min(i.start for i in intervals), max(i.end for i in intervals))
        for segment, active in partition_by_validity(frame, intervals):
            if not active:
                continue
            lineage = disjunction_of(group[i].lineage for i in active)
            output.append(TPTuple(projected_fact, lineage, segment))
    output.sort(key=lambda t: t.key())
    return relation.derived(target, output, name=f"project({relation.name})", check_constraint=True)


def union(left: TPRelation, right: TPRelation) -> TPRelation:
    """TP union (∪) of two relations with the same schema."""
    if left.schema.attributes != right.schema.attributes:
        raise ValueError(
            f"union requires identical schemas, got {left.schema} and {right.schema}"
        )
    events = left.events.merge(right.events)
    combined = TPRelation(
        left.schema,
        [*left.tuples, *right.tuples],
        events,
        name=f"union({left.name},{right.name})",
        check_constraint=False,
    )
    # Re-partition per fact so same-fact overlaps get OR-ed lineages.
    by_fact: dict[tuple, list[TPTuple]] = {}
    for tp_tuple in combined:
        by_fact.setdefault(tp_tuple.fact, []).append(tp_tuple)
    output: list[TPTuple] = []
    for fact, group in by_fact.items():
        intervals = [t.interval for t in group]
        frame = Interval(min(i.start for i in intervals), max(i.end for i in intervals))
        for segment, active in partition_by_validity(frame, intervals):
            if not active:
                continue
            lineage = disjunction_of(group[i].lineage for i in active)
            output.append(TPTuple(fact, lineage, segment))
    output.sort(key=lambda t: t.key())
    return TPRelation(
        left.schema, output, events, name=f"union({left.name},{right.name})", check_constraint=True
    )


def difference(left: TPRelation, right: TPRelation) -> TPRelation:
    """TP difference (−): the fact-equality special case of the anti join."""
    if left.schema.attributes != right.schema.attributes:
        raise ValueError(
            f"difference requires identical schemas, got {left.schema} and {right.schema}"
        )
    from ..core.joins import tp_anti_join  # local import to avoid a cycle
    from .predicates import EquiJoinCondition

    condition = EquiJoinCondition(
        left.schema,
        right.schema,
        tuple((name, name) for name in left.schema.attributes),
    )
    result = tp_anti_join(left, right, condition)
    # The anti join keeps the left schema; rename back to the plain names.
    return TPRelation(
        left.schema,
        result.tuples,
        result.events,
        name=f"difference({left.name},{right.name})",
        check_constraint=False,
    )


def rename(relation: TPRelation, mapping: dict[str, str]) -> TPRelation:
    """Rename attributes (ρ)."""
    return relation.derived(
        relation.schema.rename(mapping), relation.tuples, name=relation.name
    )


def snapshot(relation: TPRelation, time_point: int) -> list[TPTuple]:
    """Return the tuples valid at one time point (the snapshot at ``t``)."""
    return [t for t in relation if time_point in t.interval]
