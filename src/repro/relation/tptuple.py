"""Temporal-probabilistic tuples.

A TP tuple is ``(F, λ, T, p)``: a fact, a lineage expression, a half-open
validity interval and the marginal probability of the lineage.  Base tuples
carry a fresh event variable as their lineage and their probability is given;
derived tuples (join results) carry composite lineages and their probability
is computed from the event space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..lineage import EventSpace, LineageExpr, ProbabilityComputer, Var
from ..temporal import Interval


@dataclass(frozen=True, slots=True)
class TPTuple:
    """One temporal-probabilistic tuple.

    Attributes:
        fact: the non-temporal attribute values, in schema order.  Outer-join
            results use ``None`` for the padded attributes of the unmatched
            side, mirroring the ``-`` entries in the paper's Fig. 1b.
        lineage: Boolean lineage over independent base events.
        interval: half-open validity interval.
        probability: marginal probability of the lineage, if already known.
            ``None`` means "not yet computed"; use :meth:`with_probability`
            or :class:`TPRelation.with_probabilities` to fill it in.
    """

    fact: tuple
    lineage: LineageExpr
    interval: Interval
    probability: Optional[float] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def base(
        cls,
        fact: tuple,
        event: str,
        interval: Interval,
        probability: float,
    ) -> "TPTuple":
        """Create a base tuple whose lineage is a single fresh event variable."""
        return cls(tuple(fact), Var(event), interval, probability)

    def with_probability(self, events: EventSpace) -> "TPTuple":
        """Return a copy with the probability computed from ``events``."""
        computer = ProbabilityComputer(events)
        return replace(self, probability=computer.probability(self.lineage))

    def with_interval(self, interval: Interval) -> "TPTuple":
        """Return a copy valid over a different interval (same fact/lineage)."""
        return replace(self, interval=interval)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def value(self, schema_index: int):
        """Return the fact value at a schema position."""
        return self.fact[schema_index]

    @property
    def start(self) -> int:
        """Inclusive start of the validity interval."""
        return self.interval.start

    @property
    def end(self) -> int:
        """Exclusive end of the validity interval."""
        return self.interval.end

    def key(self) -> tuple:
        """A deterministic sort/identity key (fact, interval, lineage text).

        ``None`` fact values (outer-join padding) sort after any string, so
        keys stay comparable across padded and non-padded tuples.
        """
        fact_key = tuple((value is None, "" if value is None else str(value)) for value in self.fact)
        return (fact_key, self.interval.start, self.interval.end, str(self.lineage))

    def __str__(self) -> str:
        fact = ", ".join("-" if value is None else str(value) for value in self.fact)
        probability = "?" if self.probability is None else f"{self.probability:.4g}"
        return f"({fact} | {self.lineage} | {self.interval} | {probability})"
