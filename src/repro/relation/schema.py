"""Relation schemas for the non-temporal (fact) attributes.

A temporal-probabilistic tuple is ``(F, λ, T, p)``; the schema describes the
shape of ``F`` — an ordered list of named attributes.  The lineage, interval
and probability columns are implicit and managed by the data model, exactly
as in the paper where every TP relation carries the ``λ``, ``T`` and ``p``
columns in addition to its explicit attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .errors import SchemaError, UnknownAttributeError


@dataclass(frozen=True, slots=True)
class Schema:
    """An ordered collection of uniquely named fact attributes."""

    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"duplicate attribute names in schema {self.attributes}")
        if not all(self.attributes):
            raise SchemaError("attribute names must be non-empty")

    @classmethod
    def of(cls, *names: str) -> "Schema":
        """Create a schema from attribute names given as arguments."""
        return cls(tuple(names))

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self.attributes

    def index(self, name: str) -> int:
        """Return the position of attribute ``name``.

        Raises:
            UnknownAttributeError: if the attribute is not in the schema.
        """
        try:
            return self.attributes.index(name)
        except ValueError as exc:
            raise UnknownAttributeError(
                f"attribute {name!r} not in schema {self.attributes}"
            ) from exc

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def project(self, names: Iterable[str]) -> "Schema":
        """Return a schema containing only ``names``, in the given order."""
        selected = tuple(names)
        for name in selected:
            if name not in self.attributes:
                raise UnknownAttributeError(
                    f"attribute {name!r} not in schema {self.attributes}"
                )
        return Schema(selected)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with some attributes renamed."""
        for old in mapping:
            if old not in self.attributes:
                raise UnknownAttributeError(
                    f"attribute {old!r} not in schema {self.attributes}"
                )
        return Schema(tuple(mapping.get(name, name) for name in self.attributes))

    def prefixed(self, prefix: str) -> "Schema":
        """Return a schema with every attribute prefixed (``prefix.name``)."""
        return Schema(tuple(f"{prefix}.{name}" for name in self.attributes))

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (used for join output schemas).

        Raises:
            SchemaError: if the schemas share attribute names; callers should
                prefix/rename before concatenating.
        """
        clash = set(self.attributes) & set(other.attributes)
        if clash:
            raise SchemaError(f"attribute name clash in concatenation: {sorted(clash)}")
        return Schema(self.attributes + other.attributes)

    def validate_fact(self, fact: tuple) -> None:
        """Check that a fact tuple has the right arity."""
        if len(fact) != len(self.attributes):
            raise SchemaError(
                f"fact {fact!r} has {len(fact)} values, schema expects "
                f"{len(self.attributes)} ({self.attributes})"
            )

    def __str__(self) -> str:
        return "(" + ", ".join(self.attributes) + ")"
