"""Join conditions (θ) over the non-temporal attributes.

The paper's joins are parameterised by an arbitrary condition θ between the
non-temporal attributes of the two inputs (the running example uses the
equality ``a.Loc = b.Loc``).  A :class:`ThetaCondition` evaluates such a
condition over a pair of facts; the common equi-join case gets a dedicated
subclass so algorithms and the planner can detect it and use hash
partitioning.
"""

from __future__ import annotations

import numbers
import zlib
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Sequence

from .schema import Schema
from .tptuple import TPTuple


def stable_key_hash(key: Hashable) -> int:
    """An equality-invariant, run-stable hash of a partition key.

    Two properties matter for shard routing, in this order:

    1. **Equality invariance** — ``a == b`` must imply the same hash, or
       equal join keys land in different shards and the shared-nothing
       invariant breaks.  Numbers are normalised through builtin ``hash``
       (``hash(1) == hash(1.0) == hash(True)``, and numeric hashing is not
       salted), so cross-type equal keys route together exactly as the
       serial join's ``==`` matches them.
    2. **Run stability** — Python's builtin string hash is salted per
       process (``PYTHONHASHSEED``), so strings are hashed via CRC-32 of
       their bytes instead; shard assignment is then reproducible across
       runs for keys built from strings, numbers, ``None`` and tuples
       thereof (every key a :class:`ThetaCondition` produces).  Exotic key
       types fall back to builtin ``hash`` — equality-invariant and
       consistent within the routing process, though not across runs.
    """
    return zlib.crc32(repr(_normalize_key(key)).encode("utf-8", "backslashreplace"))


def _normalize_key(value) -> object:
    """Map a key to an address-free form on which ``repr`` is stable."""
    if value is None or isinstance(value, (str, bytes)):
        return value
    if isinstance(value, numbers.Number):
        # Python guarantees hash equality across ==-equal numerics of any
        # registered Number type (int/float/complex/Decimal/Fraction/...).
        return ("num", hash(value))
    if isinstance(value, tuple):
        return tuple(_normalize_key(part) for part in value)
    if isinstance(value, frozenset):
        return ("set", tuple(sorted(repr(_normalize_key(part)) for part in value)))
    return ("obj", hash(value))


class ThetaCondition:
    """A join condition between a tuple of ``r`` and a tuple of ``s``."""

    def evaluate(self, left: TPTuple, right: TPTuple) -> bool:
        """Return ``True`` when the pair satisfies the condition."""
        raise NotImplementedError

    def left_key(self, left: TPTuple) -> Optional[Hashable]:
        """Return a hashable partitioning key for the left tuple, if any.

        ``None`` signals that the condition cannot be evaluated by key
        equality and a nested-loop style pairing must be used.
        """
        return None

    def right_key(self, right: TPTuple) -> Optional[Hashable]:
        """Return a hashable partitioning key for the right tuple, if any."""
        return None

    @property
    def is_equi(self) -> bool:
        """Whether the condition is a conjunction of attribute equalities."""
        return False

    def describe(self) -> str:
        """A human-readable rendering used by EXPLAIN output."""
        return type(self).__name__


@dataclass(frozen=True)
class TrueCondition(ThetaCondition):
    """The always-true condition (a pure temporal join)."""

    def evaluate(self, left: TPTuple, right: TPTuple) -> bool:
        return True

    def left_key(self, left: TPTuple) -> Hashable:
        return ()

    def right_key(self, right: TPTuple) -> Hashable:
        return ()

    @property
    def is_equi(self) -> bool:
        return True

    def describe(self) -> str:
        return "true"


@dataclass(frozen=True)
class EquiJoinCondition(ThetaCondition):
    """Equality of one or more attribute pairs (``r.A = s.B ∧ ...``)."""

    left_schema: Schema
    right_schema: Schema
    pairs: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        for left_name, right_name in self.pairs:
            self.left_schema.index(left_name)
            self.right_schema.index(right_name)

    @classmethod
    def on(
        cls,
        left_schema: Schema,
        right_schema: Schema,
        *pairs: tuple[str, str],
    ) -> "EquiJoinCondition":
        """Create a condition from ``(left_attr, right_attr)`` pairs."""
        return cls(left_schema, right_schema, tuple(pairs))

    def _left_indexes(self) -> tuple[int, ...]:
        return tuple(self.left_schema.index(name) for name, _ in self.pairs)

    def _right_indexes(self) -> tuple[int, ...]:
        return tuple(self.right_schema.index(name) for _, name in self.pairs)

    def evaluate(self, left: TPTuple, right: TPTuple) -> bool:
        return all(
            left.fact[self.left_schema.index(l_name)] == right.fact[self.right_schema.index(r_name)]
            for l_name, r_name in self.pairs
        )

    def left_key(self, left: TPTuple) -> Hashable:
        return tuple(left.fact[index] for index in self._left_indexes())

    def right_key(self, right: TPTuple) -> Hashable:
        return tuple(right.fact[index] for index in self._right_indexes())

    @property
    def is_equi(self) -> bool:
        return True

    def describe(self) -> str:
        return " AND ".join(f"r.{left} = s.{right}" for left, right in self.pairs)


@dataclass(frozen=True)
class PredicateCondition(ThetaCondition):
    """An arbitrary Python predicate over the two facts (general θ)."""

    predicate: Callable[[tuple, tuple], bool]
    label: str = "predicate"

    def evaluate(self, left: TPTuple, right: TPTuple) -> bool:
        return bool(self.predicate(left.fact, right.fact))

    def describe(self) -> str:
        return self.label


def equi_join_on(
    left_schema: Schema, right_schema: Schema, pairs: Sequence[tuple[str, str]]
) -> EquiJoinCondition:
    """Convenience constructor mirroring the paper's ``θ: a.Loc = b.Loc``."""
    return EquiJoinCondition(left_schema, right_schema, tuple(pairs))


def theta_or_true(
    left_schema: Schema, right_schema: Schema, pairs: Sequence[tuple[str, str]]
) -> ThetaCondition:
    """The θ for equality pairs, or the always-true condition when empty.

    The single definition of the "no ON pairs means a pure temporal join"
    rule shared by the engine's join operators and the stream subsystem.
    """
    if not pairs:
        return TrueCondition()
    return EquiJoinCondition(left_schema, right_schema, tuple(pairs))
