"""Exceptions of the temporal-probabilistic data model."""

from __future__ import annotations


class RelationError(Exception):
    """Base class for all data-model errors."""


class SchemaError(RelationError):
    """Raised when a schema is malformed or attributes do not match it."""


class ConstraintViolation(RelationError):
    """Raised when a TP relation violates the duplicate-free constraint.

    A temporal-probabilistic relation requires tuples carrying the same fact
    to have pairwise disjoint validity intervals (otherwise the probability
    of the fact at a time point would be ambiguous).
    """


class UnknownAttributeError(SchemaError):
    """Raised when an attribute name is not part of the schema."""
