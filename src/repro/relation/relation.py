"""Temporal-probabilistic relations.

A :class:`TPRelation` bundles a schema, a list of TP tuples and the event
space holding the marginal probabilities of the base events referenced by
the tuples' lineages.  It enforces the standard TP integrity constraint that
tuples carrying the same fact have pairwise disjoint validity intervals
(the paper relies on this: the ``λr`` of a window then corresponds to a
single tuple of the positive relation).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..lineage import EventSpace, ProbabilityComputer
from ..temporal import Interval
from .errors import ConstraintViolation, SchemaError
from .schema import Schema
from .tptuple import TPTuple


class TPRelation:
    """An in-memory temporal-probabilistic relation."""

    __slots__ = ("_schema", "_tuples", "_events", "_name")

    def __init__(
        self,
        schema: Schema,
        tuples: Iterable[TPTuple] = (),
        events: EventSpace | None = None,
        name: str = "",
        check_constraint: bool = True,
    ) -> None:
        self._schema = schema
        self._tuples: list[TPTuple] = list(tuples)
        self._events = events if events is not None else EventSpace()
        self._name = name
        for tp_tuple in self._tuples:
            schema.validate_fact(tp_tuple.fact)
        if check_constraint:
            self.check_duplicate_free()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Sequence[tuple],
        events: EventSpace | None = None,
        name: str = "",
    ) -> "TPRelation":
        """Build a base relation from ``(fact..., event, start, end, p)`` rows.

        Each row lists the fact values in schema order, followed by the event
        variable name, the interval bounds and the marginal probability — the
        same column layout as the paper's Fig. 1a tables.  The events are
        registered in the relation's event space.
        """
        space = events if events is not None else EventSpace()
        width = len(schema)
        tuples: list[TPTuple] = []
        for row in rows:
            if len(row) != width + 4:
                raise SchemaError(
                    f"row {row!r} must have {width} fact values plus "
                    "(event, start, end, probability)"
                )
            fact = tuple(row[:width])
            event, start, end, probability = row[width:]
            space.register(str(event), float(probability))
            tuples.append(
                TPTuple.base(fact, str(event), Interval(int(start), int(end)), float(probability))
            )
        return cls(schema, tuples, space, name=name)

    def derived(
        self,
        schema: Schema,
        tuples: Iterable[TPTuple],
        name: str = "",
        check_constraint: bool = False,
    ) -> "TPRelation":
        """Create a relation over the same event space with new tuples.

        Join results are generally *not* duplicate-free in the base-relation
        sense (overlapping windows for different negative tuples may overlap
        in time for the same output fact), so the constraint check defaults
        to off for derived relations.
        """
        return TPRelation(schema, tuples, self._events, name=name, check_constraint=check_constraint)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The fact schema."""
        return self._schema

    @property
    def events(self) -> EventSpace:
        """The event space with the base-event probabilities."""
        return self._events

    @property
    def name(self) -> str:
        """Optional relation name (used by the engine catalog and EXPLAIN)."""
        return self._name

    @property
    def tuples(self) -> tuple[TPTuple, ...]:
        """The tuples, in insertion order."""
        return tuple(self._tuples)

    def __iter__(self) -> Iterator[TPTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def attribute_values(self, name: str) -> list:
        """All values of one attribute, in tuple order."""
        index = self._schema.index(name)
        return [tp_tuple.fact[index] for tp_tuple in self._tuples]

    def timespan(self) -> Optional[Interval]:
        """Smallest interval covering all tuples, or ``None`` when empty."""
        if not self._tuples:
            return None
        return Interval(
            min(tp_tuple.start for tp_tuple in self._tuples),
            max(tp_tuple.end for tp_tuple in self._tuples),
        )

    # ------------------------------------------------------------------ #
    # integrity
    # ------------------------------------------------------------------ #
    def check_duplicate_free(self) -> None:
        """Verify that same-fact tuples have pairwise disjoint intervals.

        Raises:
            ConstraintViolation: naming the offending fact and intervals.
        """
        by_fact: dict[tuple, list[TPTuple]] = {}
        for tp_tuple in self._tuples:
            by_fact.setdefault(tp_tuple.fact, []).append(tp_tuple)
        for fact, group in by_fact.items():
            ordered = sorted(group, key=lambda t: (t.start, t.end))
            for left, right in zip(ordered, ordered[1:]):
                if right.start < left.end:
                    raise ConstraintViolation(
                        f"tuples with fact {fact!r} have overlapping intervals "
                        f"{left.interval} and {right.interval}"
                    )

    def validate_lineages(self) -> None:
        """Check that every lineage variable has a registered probability."""
        for tp_tuple in self._tuples:
            self._events.validate_lineage(tp_tuple.lineage)

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def with_probabilities(self) -> "TPRelation":
        """Return a copy in which every tuple's probability is filled in."""
        computer = ProbabilityComputer(self._events)
        updated = [
            TPTuple(t.fact, t.lineage, t.interval, computer.probability(t.lineage))
            for t in self._tuples
        ]
        return TPRelation(
            self._schema, updated, self._events, name=self._name, check_constraint=False
        )

    def filter(self, predicate: Callable[[TPTuple], bool], name: str = "") -> "TPRelation":
        """Return the sub-relation of tuples satisfying ``predicate``."""
        return TPRelation(
            self._schema,
            [t for t in self._tuples if predicate(t)],
            self._events,
            name=name or self._name,
            check_constraint=False,
        )

    def sorted_by_interval(self) -> "TPRelation":
        """Return a copy sorted by (start, end, fact) — the sweep order."""
        ordered = sorted(self._tuples, key=lambda t: (t.start, t.end, t.fact))
        return TPRelation(
            self._schema, ordered, self._events, name=self._name, check_constraint=False
        )

    def head(self, count: int) -> "TPRelation":
        """Return the first ``count`` tuples (used by dataset scaling)."""
        return TPRelation(
            self._schema,
            self._tuples[:count],
            self._events,
            name=self._name,
            check_constraint=False,
        )

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def to_rows(self) -> list[tuple]:
        """Render as ``(fact..., lineage, interval, probability)`` rows."""
        return [
            (*t.fact, str(t.lineage), str(t.interval), t.probability) for t in self._tuples
        ]

    def pretty(self, max_rows: int | None = None) -> str:
        """A small fixed-width rendering for examples and debugging."""
        header = [*self._schema.attributes, "lineage", "T", "p"]
        rows = [
            [
                *("-" if value is None else str(value) for value in t.fact),
                str(t.lineage),
                str(t.interval),
                "?" if t.probability is None else f"{t.probability:.4g}",
            ]
            for t in (self._tuples if max_rows is None else self._tuples[:max_rows])
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
            "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        for row in rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
        if max_rows is not None and len(self._tuples) > max_rows:
            lines.append(f"... ({len(self._tuples) - max_rows} more)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        label = self._name or "TPRelation"
        return f"<{label}: {len(self._tuples)} tuples, schema {self._schema}>"


def fresh_event_names(prefix: str, count: int) -> list[str]:
    """Generate ``count`` event-variable names ``prefix1 ... prefixN``."""
    return [f"{prefix}{index}" for index in range(1, count + 1)]
