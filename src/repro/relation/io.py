"""Reading and writing TP relations as CSV files.

The on-disk layout mirrors the paper's table layout: one column per fact
attribute, then ``event``, ``ts``, ``te`` and ``p``.  Only base relations
(single-variable lineages) round-trip through CSV; derived relations can be
exported with :func:`write_result_csv`, which serialises the lineage as text
for inspection but is not meant to be read back.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from ..lineage import EventSpace
from .relation import TPRelation
from .schema import Schema

#: Reserved column names appended after the fact attributes.
RESERVED_COLUMNS = ("event", "ts", "te", "p")


def write_relation_csv(relation: TPRelation, path: str | Path) -> None:
    """Write a base relation to ``path`` in the canonical CSV layout.

    Raises:
        ValueError: if a tuple's lineage is not a single event variable
            (only base relations can be written).
    """
    from ..lineage import Var

    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([*relation.schema.attributes, *RESERVED_COLUMNS])
        for tp_tuple in relation:
            if not isinstance(tp_tuple.lineage, Var):
                raise ValueError(
                    "only base relations (single-variable lineages) can be written; "
                    f"found lineage {tp_tuple.lineage}"
                )
            probability = tp_tuple.probability
            if probability is None:
                probability = relation.events.probability(tp_tuple.lineage.name)
            writer.writerow(
                [
                    *tp_tuple.fact,
                    tp_tuple.lineage.name,
                    tp_tuple.start,
                    tp_tuple.end,
                    probability,
                ]
            )


def read_relation_csv(
    path: str | Path,
    events: EventSpace | None = None,
    name: str = "",
) -> TPRelation:
    """Read a base relation from a CSV file written by :func:`write_relation_csv`."""
    source = Path(path)
    with source.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if len(header) < len(RESERVED_COLUMNS) or tuple(header[-4:]) != RESERVED_COLUMNS:
            raise ValueError(
                f"CSV header must end with {RESERVED_COLUMNS}, got {header!r}"
            )
        schema = Schema(tuple(header[:-4]))
        rows = []
        for row in reader:
            if not row:
                continue
            fact = row[: len(schema)]
            event, start, end, probability = row[len(schema):]
            rows.append((*fact, event, int(start), int(end), float(probability)))
    return TPRelation.from_rows(schema, rows, events=events, name=name or source.stem)


def write_result_csv(relation: TPRelation, path: str | Path) -> None:
    """Write any (possibly derived) relation with lineage rendered as text."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([*relation.schema.attributes, "lineage", "ts", "te", "p"])
        for tp_tuple in relation:
            writer.writerow(
                [
                    *("" if value is None else value for value in tp_tuple.fact),
                    str(tp_tuple.lineage),
                    tp_tuple.start,
                    tp_tuple.end,
                    "" if tp_tuple.probability is None else tp_tuple.probability,
                ]
            )


def relation_from_tuples(
    schema: Schema,
    facts_and_rows: Iterable[tuple],
    name: str = "",
) -> TPRelation:
    """Shorthand used in tests/examples: rows as ``(fact..., event, ts, te, p)``."""
    return TPRelation.from_rows(schema, list(facts_and_rows), name=name)
