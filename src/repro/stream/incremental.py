"""Incremental, watermark-driven maintenance of lineage-aware windows.

The batch pipeline (``overlap join → LAWAU → LAWAN``) computes every window
of a positive tuple from its group of overlapping matches.  The crucial
observation carried over from the paper is that the window set of one
positive tuple ``r`` depends *only* on ``r`` itself and the θ-matching
negative tuples whose intervals overlap ``r.T`` — no other tuple of either
relation matters.  Over an unbounded stream this gives an exact finalization
rule:

    once the combined watermark ``W = min(W_left, W_right)`` satisfies
    ``r.Te ≤ W``, no future event of either stream can overlap ``r.T``
    (every future event starts at or after ``W``), so ``r``'s overlap group
    is complete and its LAWAU/LAWAN windows can be derived once, emitted,
    and never retracted.

:class:`IncrementalWindowMaintainer` keeps, per join key, the *open* positive
tuples (each with its accrued match list) and an index of negative tuples for
matching against late-arriving positives.  Every arriving event touches only
the tuples of its own key that it actually overlaps — the incremental
counterpart of the paper's no-replication property — and every watermark
advance finalizes exactly the positive tuples whose intervals it passed,
replaying the unchanged batch sweeps (:func:`repro.core.lawan.iter_lawan`)
over their completed groups.  Batch/stream equivalence is therefore by
construction, and is additionally asserted by randomized tests.

State is bounded by eviction: finalized positives are dropped immediately,
and a negative tuple is dropped once the *left* watermark passes its end
(no open positive references it through the index any more, and every future
positive starts after it).

Two extensions serve the retractable dataflow subsystem
(:mod:`repro.dataflow`):

* **Retraction** — :meth:`IncrementalWindowMaintainer.remove_positive` /
  :meth:`remove_negative` unwind an earlier addition exactly, so a node
  consuming a *revision stream* (provisional upstream output that may be
  retracted) keeps state identical to a run that never saw the retracted
  tuple.  The ingestion methods return the open entries they touched, which
  is what early-emission needs to republish affected provisional windows.
* **Per-key probability computers** — when constructed with an event space,
  the maintainer owns one hash-consed
  :class:`~repro.lineage.ProbabilityComputer` per join key, carried across
  *all* windows of a live continuous query.  Repeated windows of the same
  positive tuple then reuse interned sub-expression probabilities end to
  end, and the values stay bitwise-identical to a fresh computation (the
  memo only ever returns a value it previously computed the uncached way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.overlap import OverlapGroup, OverlapRecord
from ..lineage import EventSpace, ProbabilityComputer
from ..relation import TPTuple, ThetaCondition
from .elements import CLOSED

#: Partition key used when θ is not an equi-join (single partition).
_WHOLE_STREAM: Tuple = ("<all>",)


@dataclass
class MaintainerStats:
    """Counters exposed by the maintainer for monitoring and benchmarks."""

    positives_in: int = 0
    negatives_in: int = 0
    late_positives_dropped: int = 0
    late_negatives_dropped: int = 0
    groups_finalized: int = 0
    negatives_evicted: int = 0
    peak_open_positives: int = 0
    peak_indexed_negatives: int = 0
    positives_retracted: int = 0
    negatives_retracted: int = 0


@dataclass
class OpenPositive:
    """One positive tuple awaiting finalization, with its accrued matches.

    ``serial`` is a maintainer-unique id assigned at ingestion; the dataflow
    layer uses it to key the provisional windows published for this group
    (object identity is unsafe: ids are reused after finalization).
    """

    tuple: TPTuple
    matches: List[OverlapRecord] = field(default_factory=list)
    ingest_clock: float = 0.0
    key: Hashable = None
    serial: int = 0


#: Backwards-compatible alias (the entry type used to be module-private).
_OpenPositive = OpenPositive


@dataclass(frozen=True, slots=True)
class FinalizedGroup:
    """A completed overlap group, ready for the LAWAU/LAWAN sweeps.

    ``ingest_clock`` is the wall-clock reading recorded when the positive
    tuple was ingested; operators subtract it from the emission clock to
    report per-tuple emit latency.  ``key`` and ``serial`` identify the
    originating open entry (join key for the per-key probability computer,
    serial for provisional-publication bookkeeping).
    """

    group: OverlapGroup
    ingest_clock: float
    key: Hashable = None
    serial: int = 0


def _match_order(record: OverlapRecord) -> tuple:
    # Same ordering as repro.core.overlap._match_order: the sweeps require
    # matches sorted by overlap start (ties: end, then negative-tuple key).
    assert record.s is not None
    return (record.interval.start, record.interval.end, record.s.key())


class IncrementalWindowMaintainer:
    """Per-key overlap state with watermark-driven window finalization."""

    def __init__(self, theta: ThetaCondition, events: Optional[EventSpace] = None) -> None:
        self._theta = theta
        self._partitioned = theta.is_equi
        self._open: Dict[Hashable, List[_OpenPositive]] = {}
        self._negatives: Dict[Hashable, List[TPTuple]] = {}
        self._watermark_left: float = float("-inf")
        self._watermark_right: float = float("-inf")
        self._finalized_through: float = float("-inf")
        self.stats = MaintainerStats()
        self._open_count = 0
        self._negative_count = 0
        self._serial = 0
        # Per-key probability computers (requires an event space): the
        # hash-cons intern table of each computer persists across every
        # window of its key for the maintainer's lifetime.
        self._events = events
        self._computers: Dict[Hashable, ProbabilityComputer] = {}
        # Smallest interval end among open positives / indexed negatives:
        # lets watermark advances skip the state scan entirely when nothing
        # can finalize or be evicted yet (the common case with frequent
        # watermarks).  Maintained as a lower bound: tightened on insert,
        # recomputed exactly during the scans that do run.
        self._min_open_end: float = float("inf")
        self._min_negative_end: float = float("inf")

    # ------------------------------------------------------------------ #
    # watermark accessors
    # ------------------------------------------------------------------ #
    @property
    def combined_watermark(self) -> float:
        """The join's progress: the minimum of the two source watermarks."""
        return min(self._watermark_left, self._watermark_right)

    @property
    def open_positives(self) -> int:
        """Number of positive tuples currently awaiting finalization."""
        return self._open_count

    @property
    def indexed_negatives(self) -> int:
        """Number of negative tuples currently held for future matching."""
        return self._negative_count

    def min_open_start(self) -> float:
        """Exact smallest interval start among open positives (inf when none).

        The dataflow layer derives a node's *output watermark* from this: any
        future emission or retraction concerns an open positive, and all of a
        positive's windows start at or after the positive's own start.  The
        value is computed exactly (not as a cached bound) because an
        over-estimate would break the downstream watermark contract.
        """
        smallest = float("inf")
        for entries in self._open.values():
            for entry in entries:
                if entry.tuple.start < smallest:
                    smallest = entry.tuple.start
        return smallest

    def computer_for(self, key: Hashable) -> ProbabilityComputer:
        """The persistent per-key probability computer (requires events).

        One hash-consed computer per join key, owned by the maintainer and
        carried across all windows of a live continuous query, so repeated
        windows of the same positive tuple reuse interned sub-expression
        probabilities.
        """
        if self._events is None:
            raise ValueError(
                "maintainer was built without an event space; "
                "pass events= to materialize probabilities"
            )
        computer = self._computers.get(key)
        if computer is None:
            computer = ProbabilityComputer(self._events, hash_cons=True)
            self._computers[key] = computer
        return computer

    def probability_counters(self) -> Dict[str, int]:
        """Summed hash-cons cache telemetry across all per-key computers."""
        totals = {
            "probability_cache_hits": 0,
            "probability_cache_misses": 0,
            "probability_intern_hits": 0,
            "probability_intern_misses": 0,
        }
        for computer in self._computers.values():
            totals["probability_cache_hits"] += computer.cache_hits
            totals["probability_cache_misses"] += computer.cache_misses
            totals["probability_intern_hits"] += computer.intern_hits
            totals["probability_intern_misses"] += computer.intern_misses
        return totals

    # ------------------------------------------------------------------ #
    # event ingestion
    # ------------------------------------------------------------------ #
    def _positive_key(self, tp_tuple: TPTuple) -> Hashable:
        return self._theta.left_key(tp_tuple) if self._partitioned else _WHOLE_STREAM

    def _negative_key(self, tp_tuple: TPTuple) -> Hashable:
        return self._theta.right_key(tp_tuple) if self._partitioned else _WHOLE_STREAM

    def add_positive(
        self, tp_tuple: TPTuple, ingest_clock: float = 0.0
    ) -> Optional[OpenPositive]:
        """Ingest one positive-stream tuple, matching it against stored negatives.

        Returns the created open entry, or ``None`` when the tuple arrived
        behind the left watermark and was dropped.
        """
        self.stats.positives_in += 1
        if tp_tuple.start < self._watermark_left:
            self.stats.late_positives_dropped += 1
            return None
        key = self._positive_key(tp_tuple)
        self._serial += 1
        entry = OpenPositive(tp_tuple, ingest_clock=ingest_clock, key=key, serial=self._serial)
        for negative in self._negatives.get(key, ()):
            overlap = tp_tuple.interval.intersect(negative.interval)
            if overlap is not None and self._theta.evaluate(tp_tuple, negative):
                entry.matches.append(OverlapRecord(tp_tuple, negative, overlap))
        self._open.setdefault(key, []).append(entry)
        self._open_count += 1
        if tp_tuple.end < self._min_open_end:
            self._min_open_end = tp_tuple.end
        if self._open_count > self.stats.peak_open_positives:
            self.stats.peak_open_positives = self._open_count
        return entry

    def add_negative(self, tp_tuple: TPTuple) -> List[OpenPositive]:
        """Ingest one negative-stream tuple, extending affected open positives.

        Returns the open entries whose match lists grew (empty when the
        tuple was dropped as late or overlapped nothing) — the groups whose
        provisional windows an early-emitting operator must republish.
        """
        self.stats.negatives_in += 1
        if tp_tuple.start < self._watermark_right:
            self.stats.late_negatives_dropped += 1
            return []
        key = self._negative_key(tp_tuple)
        self._negatives.setdefault(key, []).append(tp_tuple)
        self._negative_count += 1
        if tp_tuple.end < self._min_negative_end:
            self._min_negative_end = tp_tuple.end
        if self._negative_count > self.stats.peak_indexed_negatives:
            self.stats.peak_indexed_negatives = self._negative_count
        affected: List[OpenPositive] = []
        for entry in self._open.get(key, ()):
            overlap = entry.tuple.interval.intersect(tp_tuple.interval)
            if overlap is not None and self._theta.evaluate(entry.tuple, tp_tuple):
                entry.matches.append(OverlapRecord(entry.tuple, tp_tuple, overlap))
                affected.append(entry)
        return affected

    # ------------------------------------------------------------------ #
    # retraction (revision-stream inputs)
    # ------------------------------------------------------------------ #
    def remove_positive(self, tp_tuple: TPTuple) -> Optional[OpenPositive]:
        """Unwind an earlier :meth:`add_positive`; returns the removed entry.

        The upstream watermark contract guarantees a retractable tuple is
        still open here (its group cannot have been finalized: finalization
        needs the combined watermark past its end, while retraction implies
        the upstream watermark — and therefore our side watermark — has not
        passed its start).  ``None`` means the tuple was never added, which
        callers treat as a contract violation.
        """
        key = self._positive_key(tp_tuple)
        identity = tp_tuple.key()
        entries = self._open.get(key, [])
        for index, entry in enumerate(entries):
            if entry.tuple.key() == identity:
                del entries[index]
                if not entries:
                    self._open.pop(key, None)
                self._open_count -= 1
                self.stats.positives_retracted += 1
                # _min_open_end is a lower bound; removal only raises the
                # true minimum, so the bound stays valid as-is.
                return entry
        return None

    def remove_negative(self, tp_tuple: TPTuple) -> List[OpenPositive]:
        """Unwind an earlier :meth:`add_negative`.

        Drops the tuple from the index (when still there — it may have been
        evicted) and strips its overlap records from every open positive of
        its key, returning the entries whose match lists shrank so an
        early-emitting operator can republish them.
        """
        key = self._negative_key(tp_tuple)
        identity = tp_tuple.key()
        bucket = self._negatives.get(key)
        if bucket is not None:
            for index, negative in enumerate(bucket):
                if negative.key() == identity:
                    del bucket[index]
                    if not bucket:
                        self._negatives.pop(key, None)
                    self._negative_count -= 1
                    break
        self.stats.negatives_retracted += 1
        affected: List[OpenPositive] = []
        for entry in self._open.get(key, ()):
            kept = [record for record in entry.matches if record.s.key() != identity]
            if len(kept) != len(entry.matches):
                entry.matches[:] = kept
                affected.append(entry)
        return affected

    # ------------------------------------------------------------------ #
    # watermark advancement and finalization
    # ------------------------------------------------------------------ #
    def advance_left(self, watermark: float) -> List[FinalizedGroup]:
        """Advance the positive-side watermark; returns newly finalized groups."""
        if watermark > self._watermark_left:
            self._watermark_left = watermark
            self._evict_negatives()
        return self._finalize()

    def advance_right(self, watermark: float) -> List[FinalizedGroup]:
        """Advance the negative-side watermark; returns newly finalized groups."""
        if watermark > self._watermark_right:
            self._watermark_right = watermark
        return self._finalize()

    def close(self) -> List[FinalizedGroup]:
        """Close both sides, finalizing every remaining open positive."""
        self._watermark_left = CLOSED
        self._watermark_right = CLOSED
        self._evict_negatives()
        return self._finalize()

    def _finalize(self) -> List[FinalizedGroup]:
        """Finalize open positives whose interval end the combined watermark passed."""
        horizon = self.combined_watermark
        if horizon <= self._finalized_through:
            return []
        self._finalized_through = horizon
        if horizon < self._min_open_end:
            # No open positive ends at or before the horizon: nothing to do.
            # (Entries admitted later start at or after the watermark, so
            # they end strictly after it — the bound stays valid.)
            return []
        finalized: List[FinalizedGroup] = []
        emptied: List[Hashable] = []
        min_end: float = float("inf")
        for key, entries in self._open.items():
            remaining: List[_OpenPositive] = []
            for entry in entries:
                if entry.tuple.end <= horizon:
                    entry.matches.sort(key=_match_order)
                    self.stats.groups_finalized += 1
                    self._open_count -= 1
                    finalized.append(
                        FinalizedGroup(
                            OverlapGroup(entry.tuple, entry.matches),
                            entry.ingest_clock,
                            key=entry.key,
                            serial=entry.serial,
                        )
                    )
                else:
                    if entry.tuple.end < min_end:
                        min_end = entry.tuple.end
                    remaining.append(entry)
            if remaining:
                self._open[key] = remaining
            else:
                emptied.append(key)
        for key in emptied:
            del self._open[key]
        self._min_open_end = min_end
        return finalized

    # ------------------------------------------------------------------ #
    # checkpoint accessors (layout-independent state export/import)
    # ------------------------------------------------------------------ #
    # The recovery codec (repro.recovery.checkpoint) snapshots and restores
    # maintainer state through these four methods rather than reaching into
    # the storage layout, so the columnar maintainer
    # (repro.columnar.state.ColumnarWindowMaintainer) checkpoints through
    # the same versioned frames and a snapshot taken under one layout
    # restores under the other.
    def open_items(self) -> List[Tuple[Hashable, List[OpenPositive]]]:
        """Open entries grouped per key, keys in first-seen order."""
        return [(key, list(entries)) for key, entries in self._open.items()]

    def negative_items(self) -> List[Tuple[Hashable, List[TPTuple]]]:
        """Indexed negatives grouped per key, keys in first-seen order."""
        return [(key, list(bucket)) for key, bucket in self._negatives.items()]

    def load_open_entries(self, key: Hashable, entries: List[OpenPositive]) -> None:
        """Checkpoint restore: adopt pre-built open entries for one key.

        Structural load only — counts are updated, but watermarks, bounds
        and stats are restored separately by the checkpoint codec.
        """
        self._open.setdefault(key, []).extend(entries)
        self._open_count += len(entries)

    def load_negatives(self, key: Hashable, bucket: List[TPTuple]) -> None:
        """Checkpoint restore: adopt one key's indexed negatives."""
        self._negatives.setdefault(key, []).extend(bucket)
        self._negative_count += len(bucket)

    def _evict_negatives(self) -> None:
        """Drop negatives no future positive can overlap.

        Every future positive starts at or after the left watermark, so a
        negative ending at or before it can never match again through the
        index (open positives that already matched it hold their own
        references in their match lists).
        """
        horizon = self._watermark_left
        if horizon < self._min_negative_end:
            return
        emptied: List[Hashable] = []
        min_end: float = float("inf")
        for key, bucket in self._negatives.items():
            kept = [negative for negative in bucket if negative.end > horizon]
            evicted = len(bucket) - len(kept)
            if evicted:
                self.stats.negatives_evicted += evicted
                self._negative_count -= evicted
            if kept:
                bucket_min = min(negative.end for negative in kept)
                if bucket_min < min_end:
                    min_end = bucket_min
                self._negatives[key] = kept
            else:
                emptied.append(key)
        for key in emptied:
            del self._negatives[key]
        self._min_negative_end = min_end
