"""Continuous-query subsystem: unbounded TP streams with watermarks.

Layers, bottom to top:

* :mod:`repro.stream.elements` — events, watermarks, tagged merges.
* :mod:`repro.stream.source` — ingestion with per-source watermarks and
  bounded-lateness eviction.
* :mod:`repro.stream.buffer` — historical aliases of the runtime's bounded
  backpressuring :class:`~repro.runtime.Channel`.
* :mod:`repro.stream.incremental` — per-key overlap state with
  watermark-driven, retraction-free window finalization.
* :mod:`repro.stream.operators` — :class:`ContinuousAntiJoin` and
  :class:`ContinuousLeftOuterJoin`.
* :mod:`repro.stream.query` — the :class:`StreamQuery` API: one
  hash-partitioning router over the runtime transports
  (threads / processes / sockets).
"""

from .buffer import BoundedBuffer, BufferClosed
from .elements import (
    CLOSED,
    LEFT,
    RIGHT,
    StreamElement,
    StreamEvent,
    Tagged,
    Watermark,
    tag,
)
from .incremental import (
    FinalizedGroup,
    IncrementalWindowMaintainer,
    MaintainerStats,
    OpenPositive,
)
from .operators import (
    CONTINUOUS_OPERATORS,
    REVERSE_KINDS,
    ContinuousAntiJoin,
    ContinuousFullOuterJoin,
    ContinuousInnerJoin,
    ContinuousJoinBase,
    ContinuousLeftOuterJoin,
    ContinuousRightOuterJoin,
    continuous_join,
    continuous_output_schema,
    forward_group_tuples,
    group_of,
    joined_output_schema,
    reverse_group_tuples,
    theta_from_pairs,
)
from .query import (
    WORKER_BACKENDS,
    StreamDef,
    StreamStats,
    StreamQuery,
    StreamQueryConfig,
    StreamQueryResult,
)
from .source import SourceStats, StreamSource, merge_tagged

__all__ = [
    "CLOSED",
    "CONTINUOUS_OPERATORS",
    "BoundedBuffer",
    "BufferClosed",
    "ContinuousAntiJoin",
    "ContinuousFullOuterJoin",
    "ContinuousInnerJoin",
    "ContinuousJoinBase",
    "ContinuousLeftOuterJoin",
    "ContinuousRightOuterJoin",
    "FinalizedGroup",
    "IncrementalWindowMaintainer",
    "LEFT",
    "MaintainerStats",
    "OpenPositive",
    "REVERSE_KINDS",
    "RIGHT",
    "SourceStats",
    "StreamDef",
    "StreamElement",
    "StreamEvent",
    "StreamQuery",
    "StreamQueryConfig",
    "StreamQueryResult",
    "StreamSource",
    "StreamStats",
    "Tagged",
    "WORKER_BACKENDS",
    "Watermark",
    "continuous_join",
    "continuous_output_schema",
    "forward_group_tuples",
    "group_of",
    "joined_output_schema",
    "merge_tagged",
    "reverse_group_tuples",
    "tag",
    "theta_from_pairs",
]
