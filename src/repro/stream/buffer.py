"""Bounded micro-batch buffers: the backpressure seam between threads.

The parallel stream executor connects its router thread to each worker
through a :class:`BoundedBuffer` — a small thread-safe FIFO with a hard
capacity.  ``put`` blocks once the buffer is full, so a slow worker
transparently backpressures the router (and, through it, the sources) instead
of letting queues grow without bound; ``take_batch`` drains up to a
micro-batch of elements in one lock acquisition, amortising synchronisation
over many elements the way micro-batching stream engines do.

The buffer is deliberately not :class:`queue.Queue`: the batch drain, the
close protocol (producers signal completion; consumers drain the remainder
and then see ``None``) and the high-watermark statistic are all part of the
executor's contract and easier to state explicitly than to bolt on.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

T = TypeVar("T")


class BufferClosed(RuntimeError):
    """Raised when putting into a buffer that has been closed."""


class BoundedBuffer(Generic[T]):
    """A bounded, closable, thread-safe FIFO with micro-batch draining."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self._capacity = capacity
        self._items: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.high_watermark = 0
        self.total_put = 0
        self.put_blocks = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, item: T) -> None:
        """Append one element; blocks while the buffer is full (backpressure)."""
        with self._not_full:
            if self._closed:
                raise BufferClosed("cannot put into a closed buffer")
            if len(self._items) >= self._capacity:
                self.put_blocks += 1
                while len(self._items) >= self._capacity and not self._closed:
                    self._not_full.wait()
                if self._closed:
                    raise BufferClosed("buffer closed while waiting for space")
            self._items.append(item)
            self.total_put += 1
            if len(self._items) > self.high_watermark:
                self.high_watermark = len(self._items)
            self._not_empty.notify()

    def close(self) -> None:
        """Signal that no further elements will be put.

        Consumers continue draining buffered elements; once the buffer is
        empty, :meth:`take_batch` returns ``None``.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def take_batch(self, max_size: int) -> Optional[List[T]]:
        """Remove and return up to ``max_size`` elements, in FIFO order.

        Blocks while the buffer is empty and open.  Returns ``None`` exactly
        when the buffer is closed *and* fully drained — the consumer's signal
        to finish up.
        """
        if max_size <= 0:
            raise ValueError("micro-batch size must be positive")
        with self._not_empty:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if not self._items:
                return None
            batch = [self._items.popleft() for _ in range(min(max_size, len(self._items)))]
            self._not_full.notify_all()
            return batch
