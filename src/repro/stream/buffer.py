"""Bounded micro-batch buffers — now the runtime's :class:`Channel`.

The backpressure seam this module introduced (hard-capacity FIFO, blocking
``put``, micro-batch ``take_batch`` draining, producer-side close protocol)
became the substrate of *every* execution backend and moved to
:mod:`repro.runtime.channel`.  These aliases keep the original stream-facing
names working; new code should import from :mod:`repro.runtime`.
"""

from __future__ import annotations

from ..runtime.channel import Channel, ChannelClosed

#: The historical stream-layer names for the runtime channel primitives.
BoundedBuffer = Channel
BufferClosed = ChannelClosed

__all__ = ["BoundedBuffer", "BufferClosed"]
