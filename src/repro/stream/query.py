"""Continuous queries: registration, transport-parallel execution.

A :class:`StreamQuery` binds a continuous TP join to two *registered streams*
(:class:`StreamDef` entries held by the engine catalog) and executes it to
finalization.  Execution is hash-partitioned: with an equi-join θ, every
event is routed to a worker by the stable hash of its join key — all events
that can ever form a window together share a key, so partitions are
independent — and watermarks are broadcast to every worker.

The workers themselves run on the unified runtime layer
(:mod:`repro.runtime`): this module contributes exactly one router —
:func:`run_stream_shards` — that feeds a transport session, and the
transport decides where the workers live:

* ``workers="threads"`` (default) — worker threads in this interpreter,
  connected by bounded :class:`~repro.runtime.Channel` inboxes whose hard
  capacity backpressures the router (and the sources behind it);
* ``workers="processes"`` — one OS process per partition for true
  multi-core speedup on CPU-bound lineage work (the GIL caps the thread
  backend at one core);
* ``workers="sockets"`` — one TCP endpoint per partition: driver-spawned
  local processes by default, or remote hosts named in
  :class:`~repro.runtime.Placement` — the distributed backend.

With ``partitions=1`` (or a non-equi θ, which cannot be key-partitioned) the
query runs on the inline transport in the calling thread — the fast path for
small streams and the engine's SQL entry point.

The module avoids importing :mod:`repro.engine`; the catalog is used through
its ``lookup_stream`` method only, so the engine can depend on this package
without a cycle.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, List, Optional, Sequence

from ..lineage import EventSpace
from ..obs.metrics import DEFAULT_METRICS_INTERVAL
from ..obs.trace import DEFAULT_TRACE_SAMPLE_RATE
from ..relation import Schema, TPRelation, TPTuple, stable_key_hash
from ..runtime import (
    SOURCE_CHANNEL,
    ChannelClosed,
    Placement,
    RuntimeJob,
    WorkerReport,
    WorkerStartError,
    get_transport,
)
from .elements import LEFT, StreamElement, StreamEvent, Tagged, Watermark
from .operators import (
    continuous_join,
    continuous_output_schema,
    theta_from_pairs,
)
from .source import SourceStats, merge_tagged


@dataclass(frozen=True)
class StreamStats:
    """Planner-visible statistics of one registered stream.

    A stream is unbounded in principle, so these are *expected* figures —
    replay sources derived from a finite relation know them exactly; live
    sources may estimate or omit them.  The shard/partition planners treat a
    missing value as "unknown, do not parallelise".
    """

    cardinality: int
    attribute_distinct_counts: dict

    def distinct(self, attribute: str) -> int:
        """Expected distinct-value count of one attribute (0 when unknown)."""
        return self.attribute_distinct_counts.get(attribute, 0)


@dataclass(frozen=True)
class StreamDef:
    """A registered stream: schema, event space and a replayable element source.

    ``replay`` returns a *fresh* iterator of stream elements each time it is
    called, so the same registered stream can serve several queries.
    ``stats`` optionally carries the expected cardinality / key selectivity
    the partition planner consults when choosing per-stage worker counts.
    """

    schema: Schema
    events: EventSpace
    replay: Callable[[], Iterable[StreamElement]]
    name: str = ""
    stats: Optional[StreamStats] = None


#: Valid values of :attr:`StreamQueryConfig.workers`.
WORKER_BACKENDS = ("threads", "processes", "sockets")


@dataclass(frozen=True)
class StreamQueryConfig:
    """Execution knobs of a continuous query.

    ``workers`` picks the transport for ``partitions > 1``: ``"threads"``
    shares one interpreter (cheap, but the GIL caps CPU-bound lineage work
    at one core), ``"processes"`` runs each partition in its own OS process
    (true multi-core speedup, paid for with per-element serialization), and
    ``"sockets"`` runs each partition behind a TCP endpoint — locally
    spawned by default, or on the hosts a ``placement`` names (start them
    with ``python -m repro.runtime.worker --listen HOST:PORT``).  The
    process and socket transports degrade to threads with a warning when
    their workers cannot start.

    ``materialize_probabilities`` computes output probabilities inline with
    the maintainer-owned per-key hash-consed computers (carried across all
    windows of a live query) instead of leaving them for a later
    ``with_probabilities`` pass.

    ``early_emit`` publishes provisional windows before the watermark closes
    them, retracting/refining on later data.  It is honoured by the dataflow
    graph executor (:mod:`repro.dataflow`); the planner routes stream joins
    through a dataflow plan whenever it is set.

    ``metrics`` instruments the run with per-worker registries
    (:mod:`repro.obs`): flow counters, loop idle/busy time, watermark lag,
    probability-cache hit rates.  Snapshots cross every transport boundary
    (periodic live frames plus one final per worker report); read them via
    :meth:`StreamQuery.metrics` / :meth:`~repro.dataflow.DataflowQuery.metrics`
    during or after a run.  Off by default — the uninstrumented loop is the
    fast path.

    ``trace`` samples elements at the source (``trace_sample_rate`` of them,
    deterministically) and records span-per-element timelines — queue wait,
    operate, emit — across every transport boundary into per-worker flight
    recorders.  Read them via :meth:`StreamQuery.trace` /
    :meth:`StreamQueryResult.explain_tuple`; export with
    :meth:`repro.obs.TraceAggregator.write_chrome_trace`.  Off by default
    for the same reason as ``metrics``: unsampled elements carry no trace
    context and skip every tracing branch.
    """

    partitions: int = 1
    micro_batch_size: int = 64
    buffer_capacity: int = 1024
    workers: str = "threads"
    materialize_probabilities: bool = False
    early_emit: bool = False
    placement: Optional[Placement] = None
    metrics: bool = False
    metrics_interval: float = DEFAULT_METRICS_INTERVAL
    trace: bool = False
    trace_sample_rate: float = DEFAULT_TRACE_SAMPLE_RATE

    def __post_init__(self) -> None:
        if self.partitions <= 0:
            raise ValueError("partitions must be positive")
        if self.workers not in WORKER_BACKENDS:
            raise ValueError(
                f"workers must be one of {WORKER_BACKENDS}, got {self.workers!r}"
            )
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1], got {self.trace_sample_rate}"
            )


def summarize_latency_ms(samples: Sequence[float]) -> dict:
    """Mean / p50 / p95 / max of a latency sample list, in milliseconds.

    Shared by :class:`StreamQueryResult` and the dataflow layer's
    :class:`~repro.dataflow.NodeResult`, so both subsystems report
    identically computed percentiles.
    """
    if not samples:
        return {"mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0}
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "mean_ms": 1000.0 * sum(ordered) / count,
        "p50_ms": 1000.0 * ordered[count // 2],
        "p95_ms": 1000.0 * ordered[min(count - 1, (95 * count) // 100)],
        "max_ms": 1000.0 * ordered[-1],
    }


@dataclass
class StreamQueryResult:
    """The finalized output of a continuous query run, with run statistics."""

    relation: TPRelation
    events_processed: int
    outputs_emitted: int
    elapsed_seconds: float
    emit_latencies: List[float] = field(default_factory=list)
    partitions: int = 1
    late_dropped: int = 0
    backpressure_blocks: int = 0
    #: The transport that actually ran (``inline`` for single-partition
    #: runs; the fallback transport when workers could not start).
    workers: str = "threads"
    #: Final per-worker metrics snapshots (empty unless ``config.metrics``).
    metrics: List[dict] = field(default_factory=list)
    #: Every span the run recorded (empty unless ``config.trace``).
    trace_spans: List[dict] = field(default_factory=list)

    @property
    def events_per_second(self) -> float:
        """Ingest throughput of the run."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.events_processed / self.elapsed_seconds

    def latency_summary(self) -> dict:
        """Mean / p50 / p95 / max emit latency in milliseconds."""
        return summarize_latency_ms(self.emit_latencies)

    def trace(self):
        """The run's spans as a :class:`repro.obs.TraceAggregator`.

        ``None`` when the run was not traced (or nothing was sampled).
        """
        if not self.trace_spans:
            return None
        from ..obs.trace import TraceAggregator

        aggregator = TraceAggregator()
        aggregator.add_spans(self.trace_spans)
        return aggregator

    def explain_tuple(self, key) -> str:
        """Provenance of one settled tuple: lineage joined with its trace.

        ``key`` is either a full fact tuple (exact match) or a scalar that
        any fact attribute may equal.  The report shows the tuple's
        interval, probability and lineage tree, then every sampled
        timeline whose spans contributed to it.
        """
        from ..obs.trace import find_tuples, render_tuple_explanation

        matches = find_tuples(self.relation, key)
        if not matches:
            return f"no settled tuple matches {key!r}"
        aggregator = self.trace()
        return "\n\n".join(
            render_tuple_explanation(tp_tuple, aggregator) for tp_tuple in matches
        )


def run_stream_shards(
    transport_name: str,
    specs: Sequence,
    merged: Iterable[Tagged],
    theta,
    stamp_right: bool,
    micro_batch_size: int = 64,
    buffer_capacity: int = 1024,
    placement: Optional[Placement] = None,
    metrics: bool = False,
    metrics_interval: float = DEFAULT_METRICS_INTERVAL,
    collector: Optional[object] = None,
    trace: bool = False,
    trace_sample_rate: float = DEFAULT_TRACE_SAMPLE_RATE,
    trace_collector: Optional[object] = None,
) -> tuple[List[WorkerReport], int, int, str]:
    """The one stream router: feed a merged element sequence into a session.

    Events are hash-routed to the shard worker owning their join key (the
    stable, ``PYTHONHASHSEED``-independent hash shared with the batch shard
    planner), watermarks are broadcast to every worker, per-shard element
    order is preserved by the transport's FIFO channels, and the bounded
    channels backpressure this router.  Ingest clocks are stamped before an
    element can sit in any queue, so emit latency includes queueing (and, on
    the serialized transports, encoding) time; the inline transport stamps
    at processing time instead, where the two coincide.

    With ``trace`` on, this loop is also the trace *source*: it samples
    events deterministically, records the root ``source`` span, and attaches
    the trace context the workers propagate.

    Returns ``(reports, events_processed, backpressure_blocks, transport)``
    with reports in worker-index order — deterministic for a fixed partition
    count.
    """
    partitions = len(specs)
    job = RuntimeJob(
        tuple(specs),
        micro_batch_size,
        buffer_capacity,
        metrics=metrics or collector is not None,
        metrics_interval=metrics_interval,
        trace=trace or trace_collector is not None,
    )
    sampler = None
    driver_tracer = None
    if job.trace:
        from ..obs.trace import Tracer, TraceSampler, span_detail

        sampler = TraceSampler(trace_sample_rate)
        driver_tracer = Tracer("driver")
    session = get_transport(transport_name).start(job, placement)
    if collector is not None:
        collector.attach(session)
    if trace_collector is not None:
        trace_collector.attach(session)
    events_processed = 0
    with session:
        stamp = session.stamps_ingest
        try:
            for tagged in merged:
                element = tagged.element
                if isinstance(element, StreamEvent):
                    events_processed += 1
                    # Right/full outer joins treat right events as positives
                    # too (mirrored maintainer), so both sides get an
                    # ingestion stamp for emit latency.
                    if stamp and (tagged.side == LEFT or stamp_right):
                        tagged = Tagged(tagged.side, element, time.perf_counter())
                    if sampler is not None:
                        trace_id = sampler.sample()
                        if trace_id is not None:
                            now = time.perf_counter()
                            root = driver_tracer.record(
                                "source",
                                trace_id,
                                None,
                                now,
                                now,
                                side=tagged.side,
                                **span_detail(element),
                            )
                            tagged = Tagged(
                                tagged.side,
                                element,
                                tagged.ingest_clock,
                                (trace_id, root),
                            )
                    if partitions > 1:
                        key = (
                            theta.left_key(element.tuple)
                            if tagged.side == LEFT
                            else theta.right_key(element.tuple)
                        )
                        index = stable_key_hash(key) % partitions
                    else:
                        index = 0
                    session.send(index, None, tagged)
                elif isinstance(element, Watermark):
                    for index in range(partitions):
                        session.send(index, SOURCE_CHANNEL, tagged)
        except ChannelClosed:
            # A worker died and closed its channel; stop routing — the
            # failure is re-raised by finish() after every worker is joined.
            pass
        for index in range(partitions):
            session.done(index)
        reports = session.finish()
        blocks = session.backpressure_blocks
    if collector is not None:
        collector.complete(
            [report.metrics for report in reports if report.metrics is not None]
        )
    if trace_collector is not None:
        span_lists = [report.spans for report in reports if report.spans]
        if driver_tracer is not None:
            span_lists.append(driver_tracer.dump())
        trace_collector.complete(span_lists)
    return reports, events_processed, blocks, session.name


class StreamQuery:
    """A continuous TP join registered against catalogued streams.

    Args:
        catalog: any object with ``lookup_stream(name) -> StreamDef`` (the
            engine catalog satisfies this).
        kind: ``"anti"`` or ``"left_outer"``.
        left: name of the positive (left) registered stream.
        right: name of the negative (right) registered stream.
        on: ``(left_attribute, right_attribute)`` equality pairs (θ).
        config: execution knobs; defaults to single-partition inline runs.
    """

    def __init__(
        self,
        catalog,
        kind: str,
        left: str,
        right: str,
        on: Sequence[tuple[str, str]] = (),
        config: StreamQueryConfig | None = None,
    ) -> None:
        self._catalog = catalog
        self._kind = kind
        self._left_name = left
        self._right_name = right
        self._on = tuple(on)
        self._config = config or StreamQueryConfig()
        # Validate eagerly: unknown streams and bad θ fail at registration.
        left_def = catalog.lookup_stream(left)
        right_def = catalog.lookup_stream(right)
        self._theta = theta_from_pairs(left_def.schema, right_def.schema, self._on)
        continuous_join(kind, left_def.schema, right_def.schema, self._on)
        self._collector = None
        if self._config.metrics:
            from ..obs.collector import MetricsCollector

            self._collector = MetricsCollector()
        self._trace_collector = None
        if self._config.trace:
            from ..obs.trace import TraceCollector

            self._trace_collector = TraceCollector()

    @property
    def config(self) -> StreamQueryConfig:
        return self._config

    def metrics(self):
        """Aggregated worker metrics: live during :meth:`run`, final after.

        Returns a :class:`repro.obs.MetricsAggregator`, or ``None`` when
        the config has ``metrics=False`` or nothing has been collected yet.
        """
        if self._collector is None:
            return None
        return self._collector.aggregate()

    def trace(self):
        """Aggregated span timelines: live during :meth:`run`, final after.

        Returns a :class:`repro.obs.TraceAggregator`, or ``None`` when the
        config has ``trace=False`` or no span has been recorded yet.
        """
        if self._trace_collector is None:
            return None
        return self._trace_collector.aggregate()

    def describe(self) -> str:
        condition = " AND ".join(f"{left} = {right}" for left, right in self._on) or "true"
        backend = ""
        if self.effective_partitions > 1 and self._config.workers != "threads":
            backend = f", workers={self._config.workers}"
        return (
            f"StreamQuery[{self._kind}] {self._left_name} × {self._right_name} "
            f"on {condition} (partitions={self.effective_partitions}{backend})"
        )

    @property
    def effective_partitions(self) -> int:
        """The partition count a run will actually use.

        Non-equi θ cannot be hash-partitioned by key: such queries run on
        one partition regardless of the configured count.
        """
        if not self._theta.is_equi:
            return 1
        return self._config.partitions

    def _shard_spec(self):
        """The picklable worker spec every transport rebuilds the join from."""
        # Imported lazily: repro.parallel depends on stream submodules, so a
        # top-level import here would be circular during package init.
        from ..parallel.stream_exec import StreamShardSpec

        left_def = self._catalog.lookup_stream(self._left_name)
        right_def = self._catalog.lookup_stream(self._right_name)
        event_probabilities = None
        if self._config.materialize_probabilities:
            merged_events = left_def.events.merge(right_def.events)
            event_probabilities = {
                name: merged_events.probability(name) for name in merged_events.names()
            }
        return StreamShardSpec(
            kind=self._kind,
            left_attributes=left_def.schema.attributes,
            right_attributes=right_def.schema.attributes,
            on=self._on,
            left_name=left_def.name or self._left_name,
            right_name=right_def.name or self._right_name,
            event_probabilities=event_probabilities,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, merge_seed: Optional[int] = None) -> StreamQueryResult:
        """Execute the query over a fresh replay of both streams."""
        left_def = self._catalog.lookup_stream(self._left_name)
        right_def = self._catalog.lookup_stream(self._right_name)
        left_elements = left_def.replay()
        right_elements = right_def.replay()
        merged = merge_tagged(left_elements, right_elements, seed=merge_seed)
        partitions = self.effective_partitions
        transport = self._config.workers if partitions > 1 else "inline"
        spec = self._shard_spec()
        specs = tuple(replace(spec, index=index) for index in range(partitions))
        stamp_right = self._kind in ("right_outer", "full_outer")
        started = time.perf_counter()
        try:
            reports, events_processed, blocks, backend = run_stream_shards(
                transport,
                specs,
                merged,
                self._theta,
                stamp_right,
                micro_batch_size=self._config.micro_batch_size,
                buffer_capacity=self._config.buffer_capacity,
                placement=self._config.placement,
                metrics=self._config.metrics,
                metrics_interval=self._config.metrics_interval,
                collector=self._collector,
                trace=self._config.trace,
                trace_sample_rate=self._config.trace_sample_rate,
                trace_collector=self._trace_collector,
            )
        except WorkerStartError as error:
            # Workers unavailable (sandbox without fork, unreachable host):
            # degrade to the thread transport — safe, no element was
            # consumed yet — and record the backend that actually ran.
            warnings.warn(
                f"{transport!r} workers could not start "
                f"({error}); falling back to the thread transport",
                RuntimeWarning,
                stacklevel=2,
            )
            reports, events_processed, blocks, backend = run_stream_shards(
                "threads",
                specs,
                merged,
                self._theta,
                stamp_right,
                micro_batch_size=self._config.micro_batch_size,
                buffer_capacity=self._config.buffer_capacity,
                metrics=self._config.metrics,
                metrics_interval=self._config.metrics_interval,
                collector=self._collector,
                trace=self._config.trace,
                trace_sample_rate=self._config.trace_sample_rate,
                trace_collector=self._trace_collector,
            )
        elapsed = time.perf_counter() - started

        outputs: List[TPTuple] = []
        latencies: List[float] = []
        late = 0
        for report in reports:
            outputs.extend(report.outputs)
            latencies.extend(report.emit_latencies)
            late += report.late_dropped

        events = left_def.events.merge(right_def.events)
        schema = continuous_output_schema(
            self._kind,
            left_def.schema,
            right_def.schema,
            right_def.name or self._right_name,
        )
        relation = TPRelation(
            schema, outputs, events, name=self.describe(), check_constraint=False
        )
        # Sources evict events beyond their lateness bound at ingestion;
        # surface those too (a replay that exposes stats, e.g. StreamSource).
        for elements in (left_elements, right_elements):
            stats = getattr(elements, "stats", None)
            if isinstance(stats, SourceStats):
                late += stats.late_evicted
        return StreamQueryResult(
            relation=relation,
            events_processed=events_processed,
            outputs_emitted=len(outputs),
            elapsed_seconds=elapsed,
            emit_latencies=latencies,
            partitions=partitions,
            late_dropped=late,
            backpressure_blocks=blocks,
            workers=backend,
            metrics=[
                report.metrics for report in reports if report.metrics is not None
            ],
            trace_spans=(
                self._trace_collector.spans()
                if self._trace_collector is not None
                else []
            ),
        )
