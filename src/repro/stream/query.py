"""Continuous queries: registration, parallel execution, backpressure.

A :class:`StreamQuery` binds a continuous TP join to two *registered streams*
(:class:`StreamDef` entries held by the engine catalog) and executes it to
finalization.  Execution is hash-partitioned: with an equi-join θ, every
event is routed to a worker by the hash of its join key — all events that can
ever form a window together share a key, so partitions are independent — and
watermarks are broadcast to every worker.  Each worker thread pulls
micro-batches from a :class:`~repro.stream.buffer.BoundedBuffer`, whose hard
capacity backpressures the router (and the sources behind it) when a worker
falls behind.

Two worker backends share that topology: ``workers="threads"`` (default)
runs partitions as threads in this interpreter, ``workers="processes"``
runs each partition in its own OS process via
:mod:`repro.parallel.stream_exec` for true multi-core speedup on CPU-bound
lineage work (the GIL caps the thread backend at one core).

With ``partitions=1`` (or a non-equi θ, which cannot be key-partitioned) the
query runs inline on the calling thread — the fast path for small streams
and the engine's SQL entry point.

The module avoids importing :mod:`repro.engine`; the catalog is used through
its ``lookup_stream`` method only, so the engine can depend on this package
without a cycle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from ..lineage import EventSpace
from ..relation import Schema, TPRelation, TPTuple, stable_key_hash
from .buffer import BoundedBuffer, BufferClosed
from .elements import LEFT, StreamElement, StreamEvent, Tagged, Watermark
from .operators import (
    ContinuousJoinBase,
    continuous_join,
    continuous_output_schema,
    theta_from_pairs,
)
from .source import SourceStats, merge_tagged


@dataclass(frozen=True)
class StreamStats:
    """Planner-visible statistics of one registered stream.

    A stream is unbounded in principle, so these are *expected* figures —
    replay sources derived from a finite relation know them exactly; live
    sources may estimate or omit them.  The shard/partition planners treat a
    missing value as "unknown, do not parallelise".
    """

    cardinality: int
    attribute_distinct_counts: dict

    def distinct(self, attribute: str) -> int:
        """Expected distinct-value count of one attribute (0 when unknown)."""
        return self.attribute_distinct_counts.get(attribute, 0)


@dataclass(frozen=True)
class StreamDef:
    """A registered stream: schema, event space and a replayable element source.

    ``replay`` returns a *fresh* iterator of stream elements each time it is
    called, so the same registered stream can serve several queries.
    ``stats`` optionally carries the expected cardinality / key selectivity
    the partition planner consults when choosing per-stage worker counts.
    """

    schema: Schema
    events: EventSpace
    replay: Callable[[], Iterable[StreamElement]]
    name: str = ""
    stats: Optional[StreamStats] = None


#: Valid values of :attr:`StreamQueryConfig.workers`.
WORKER_BACKENDS = ("threads", "processes")


@dataclass(frozen=True)
class StreamQueryConfig:
    """Execution knobs of a continuous query.

    ``workers`` picks the parallel backend for ``partitions > 1``:
    ``"threads"`` shares one interpreter (cheap, but the GIL caps CPU-bound
    lineage work at one core), ``"processes"`` runs each partition in its
    own OS process via :mod:`repro.parallel.stream_exec` (true multi-core
    speedup, paid for with per-element serialization).

    ``materialize_probabilities`` computes output probabilities inline with
    the maintainer-owned per-key hash-consed computers (carried across all
    windows of a live query) instead of leaving them for a later
    ``with_probabilities`` pass.

    ``early_emit`` publishes provisional windows before the watermark closes
    them, retracting/refining on later data.  It is honoured by the dataflow
    graph executor (:mod:`repro.dataflow`); the planner routes stream joins
    through a dataflow plan whenever it is set.
    """

    partitions: int = 1
    micro_batch_size: int = 64
    buffer_capacity: int = 1024
    workers: str = "threads"
    materialize_probabilities: bool = False
    early_emit: bool = False

    def __post_init__(self) -> None:
        if self.partitions <= 0:
            raise ValueError("partitions must be positive")
        if self.workers not in WORKER_BACKENDS:
            raise ValueError(
                f"workers must be one of {WORKER_BACKENDS}, got {self.workers!r}"
            )


def summarize_latency_ms(samples: Sequence[float]) -> dict:
    """Mean / p50 / p95 / max of a latency sample list, in milliseconds.

    Shared by :class:`StreamQueryResult` and the dataflow layer's
    :class:`~repro.dataflow.NodeResult`, so both subsystems report
    identically computed percentiles.
    """
    if not samples:
        return {"mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0}
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "mean_ms": 1000.0 * sum(ordered) / count,
        "p50_ms": 1000.0 * ordered[count // 2],
        "p95_ms": 1000.0 * ordered[min(count - 1, (95 * count) // 100)],
        "max_ms": 1000.0 * ordered[-1],
    }


@dataclass
class StreamQueryResult:
    """The finalized output of a continuous query run, with run statistics."""

    relation: TPRelation
    events_processed: int
    outputs_emitted: int
    elapsed_seconds: float
    emit_latencies: List[float] = field(default_factory=list)
    partitions: int = 1
    late_dropped: int = 0
    backpressure_blocks: int = 0
    workers: str = "threads"

    @property
    def events_per_second(self) -> float:
        """Ingest throughput of the run."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.events_processed / self.elapsed_seconds

    def latency_summary(self) -> dict:
        """Mean / p50 / p95 / max emit latency in milliseconds."""
        return summarize_latency_ms(self.emit_latencies)


class StreamQuery:
    """A continuous TP join registered against catalogued streams.

    Args:
        catalog: any object with ``lookup_stream(name) -> StreamDef`` (the
            engine catalog satisfies this).
        kind: ``"anti"`` or ``"left_outer"``.
        left: name of the positive (left) registered stream.
        right: name of the negative (right) registered stream.
        on: ``(left_attribute, right_attribute)`` equality pairs (θ).
        config: execution knobs; defaults to single-partition inline runs.
    """

    def __init__(
        self,
        catalog,
        kind: str,
        left: str,
        right: str,
        on: Sequence[tuple[str, str]] = (),
        config: StreamQueryConfig | None = None,
    ) -> None:
        self._catalog = catalog
        self._kind = kind
        self._left_name = left
        self._right_name = right
        self._on = tuple(on)
        self._config = config or StreamQueryConfig()
        # Validate eagerly: unknown streams and bad θ fail at registration.
        left_def = catalog.lookup_stream(left)
        right_def = catalog.lookup_stream(right)
        self._theta = theta_from_pairs(left_def.schema, right_def.schema, self._on)
        continuous_join(kind, left_def.schema, right_def.schema, self._on)

    @property
    def config(self) -> StreamQueryConfig:
        return self._config

    def describe(self) -> str:
        condition = " AND ".join(f"{left} = {right}" for left, right in self._on) or "true"
        backend = ""
        if self.effective_partitions > 1 and self._config.workers == "processes":
            backend = ", workers=processes"
        return (
            f"StreamQuery[{self._kind}] {self._left_name} × {self._right_name} "
            f"on {condition} (partitions={self.effective_partitions}{backend})"
        )

    @property
    def effective_partitions(self) -> int:
        """The partition count a run will actually use.

        Non-equi θ cannot be hash-partitioned by key: such queries run on
        one partition regardless of the configured count.
        """
        if not self._theta.is_equi:
            return 1
        return self._config.partitions

    def _build_join(self) -> ContinuousJoinBase:
        left_def = self._catalog.lookup_stream(self._left_name)
        right_def = self._catalog.lookup_stream(self._right_name)
        materialize = self._config.materialize_probabilities
        return continuous_join(
            self._kind,
            left_def.schema,
            right_def.schema,
            self._on,
            left_name=left_def.name or self._left_name,
            right_name=right_def.name or self._right_name,
            events=left_def.events.merge(right_def.events) if materialize else None,
            materialize_probabilities=materialize,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, merge_seed: Optional[int] = None) -> StreamQueryResult:
        """Execute the query over a fresh replay of both streams."""
        left_def = self._catalog.lookup_stream(self._left_name)
        right_def = self._catalog.lookup_stream(self._right_name)
        left_elements = left_def.replay()
        right_elements = right_def.replay()
        merged = merge_tagged(left_elements, right_elements, seed=merge_seed)
        partitions = self.effective_partitions
        backend = self._config.workers if partitions > 1 else "threads"
        started = time.perf_counter()
        if partitions == 1:
            outputs, latencies, late, events_processed, blocks = self._run_inline(merged)
        elif backend == "processes":
            from ..parallel.stream_exec import WorkerStartError

            try:
                outputs, latencies, late, events_processed, blocks = self._run_processes(
                    merged, partitions
                )
            except WorkerStartError:
                # Processes unavailable (sandbox): degrade to the thread
                # backend — safe, no element was consumed yet — and report
                # the backend that actually ran.
                backend = "threads"
                outputs, latencies, late, events_processed, blocks = self._run_parallel(
                    merged, partitions
                )
        else:
            outputs, latencies, late, events_processed, blocks = self._run_parallel(
                merged, partitions
            )
        elapsed = time.perf_counter() - started

        events = left_def.events.merge(right_def.events)
        schema = continuous_output_schema(
            self._kind,
            left_def.schema,
            right_def.schema,
            right_def.name or self._right_name,
        )
        relation = TPRelation(
            schema, outputs, events, name=self.describe(), check_constraint=False
        )
        # Sources evict events beyond their lateness bound at ingestion;
        # surface those too (a replay that exposes stats, e.g. StreamSource).
        for elements in (left_elements, right_elements):
            stats = getattr(elements, "stats", None)
            if isinstance(stats, SourceStats):
                late += stats.late_evicted
        return StreamQueryResult(
            relation=relation,
            events_processed=events_processed,
            outputs_emitted=len(outputs),
            elapsed_seconds=elapsed,
            emit_latencies=latencies,
            partitions=partitions,
            late_dropped=late,
            backpressure_blocks=blocks,
            workers=backend,
        )

    @staticmethod
    def _operator_stats(joins: Sequence[ContinuousJoinBase]):
        latencies: List[float] = []
        late = 0
        for join in joins:
            latencies.extend(join.emit_latencies)
            late += (
                join.maintainer.stats.late_positives_dropped
                + join.maintainer.stats.late_negatives_dropped
            )
        return latencies, late

    def _run_inline(self, merged: Iterable[Tagged]):
        join = self._build_join()
        outputs: List[TPTuple] = []
        events_processed = 0
        for tagged in merged:
            if isinstance(tagged.element, StreamEvent):
                events_processed += 1
            outputs.extend(join.process(tagged))
        outputs.extend(join.close())
        latencies, late = self._operator_stats([join])
        return outputs, latencies, late, events_processed, 0

    def _run_processes(self, merged: Iterable[Tagged], partitions: int):
        """Shard the run across worker processes (shared-nothing backend)."""
        # Imported lazily: repro.parallel depends on stream submodules, so a
        # top-level import here would be circular during package init.
        from ..parallel.stream_exec import StreamShardSpec, run_process_partitions

        left_def = self._catalog.lookup_stream(self._left_name)
        right_def = self._catalog.lookup_stream(self._right_name)
        event_probabilities = None
        if self._config.materialize_probabilities:
            merged_events = left_def.events.merge(right_def.events)
            event_probabilities = {
                name: merged_events.probability(name) for name in merged_events.names()
            }
        spec = StreamShardSpec(
            kind=self._kind,
            left_attributes=left_def.schema.attributes,
            right_attributes=right_def.schema.attributes,
            on=self._on,
            left_name=left_def.name or self._left_name,
            right_name=right_def.name or self._right_name,
            event_probabilities=event_probabilities,
        )
        outcome = run_process_partitions(
            spec,
            merged,
            self._theta,
            partitions,
            micro_batch_size=self._config.micro_batch_size,
            buffer_capacity=self._config.buffer_capacity,
        )
        return (
            outcome.outputs,
            outcome.emit_latencies,
            outcome.late_dropped,
            outcome.events_processed,
            outcome.backpressure_blocks,
        )

    def _run_parallel(self, merged: Iterable[Tagged], partitions: int):
        joins = [self._build_join() for _ in range(partitions)]
        buffers: List[BoundedBuffer[Tagged]] = [
            BoundedBuffer(self._config.buffer_capacity) for _ in range(partitions)
        ]
        outputs_per_worker: List[List[TPTuple]] = [[] for _ in range(partitions)]
        failures: List[BaseException] = []

        def work(index: int) -> None:
            join = joins[index]
            sink = outputs_per_worker[index]
            try:
                while True:
                    batch = buffers[index].take_batch(self._config.micro_batch_size)
                    if batch is None:
                        break
                    for tagged in batch:
                        sink.extend(join.process(tagged))
                sink.extend(join.close())
            except BaseException as error:  # noqa: BLE001 - reported to caller
                failures.append(error)
                # Close our buffer so the router cannot block forever on a
                # full buffer nobody drains; it sees BufferClosed and stops.
                buffers[index].close()

        workers = [
            threading.Thread(target=work, args=(index,), name=f"stream-worker-{index}")
            for index in range(partitions)
        ]
        for worker in workers:
            worker.start()

        events_processed = 0
        theta = self._theta
        # Right/full outer joins also treat right events as positives (in the
        # mirrored maintainer), so their ingestion must be stamped too.
        stamp_right = self._kind in ("right_outer", "full_outer")
        try:
            for tagged in merged:
                element = tagged.element
                if isinstance(element, StreamEvent):
                    events_processed += 1
                    if tagged.side == LEFT:
                        key = theta.left_key(element.tuple)
                        # Stamp ingestion here, before the element can sit in
                        # a worker's buffer: emit latency includes queueing.
                        tagged = Tagged(tagged.side, element, time.perf_counter())
                    else:
                        key = theta.right_key(element.tuple)
                        if stamp_right:
                            tagged = Tagged(tagged.side, element, time.perf_counter())
                    # Stable hash, not builtin hash(): shard assignment must
                    # be reproducible across runs and identical to the
                    # process router's.
                    buffers[stable_key_hash(key) % partitions].put(tagged)
                elif isinstance(element, Watermark):
                    for buffer in buffers:
                        buffer.put(tagged)
        except BufferClosed:
            # A worker died and closed its buffer; stop routing — the
            # failure is re-raised after every worker is joined.
            pass
        finally:
            for buffer in buffers:
                buffer.close()
            for worker in workers:
                worker.join()
        if failures:
            raise failures[0]

        outputs: List[TPTuple] = []
        for worker_outputs in outputs_per_worker:
            outputs.extend(worker_outputs)
        blocks = sum(buffer.put_blocks for buffer in buffers)
        latencies, late = self._operator_stats(joins)
        return outputs, latencies, late, events_processed, blocks
