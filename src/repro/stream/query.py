"""Continuous queries: registration, transport-parallel execution.

A :class:`StreamQuery` binds a continuous TP join to two *registered streams*
(:class:`StreamDef` entries held by the engine catalog) and executes it to
finalization.  Execution is hash-partitioned: with an equi-join θ, every
event is routed to a worker by the stable hash of its join key — all events
that can ever form a window together share a key, so partitions are
independent — and watermarks are broadcast to every worker.

The workers themselves run on the unified runtime layer
(:mod:`repro.runtime`): this module contributes exactly one router —
:func:`run_stream_shards` — that feeds a transport session, and the
transport decides where the workers live:

* ``workers="threads"`` (default) — worker threads in this interpreter,
  connected by bounded :class:`~repro.runtime.Channel` inboxes whose hard
  capacity backpressures the router (and the sources behind it);
* ``workers="processes"`` — one OS process per partition for true
  multi-core speedup on CPU-bound lineage work (the GIL caps the thread
  backend at one core);
* ``workers="sockets"`` — one TCP endpoint per partition: driver-spawned
  local processes by default, or remote hosts named in
  :class:`~repro.runtime.Placement` — the distributed backend.

With ``partitions=1`` (or a non-equi θ, which cannot be key-partitioned) the
query runs on the inline transport in the calling thread — the fast path for
small streams and the engine's SQL entry point.

The module avoids importing :mod:`repro.engine`; the catalog is used through
its ``lookup_stream`` method only, so the engine can depend on this package
without a cycle.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, List, Optional, Sequence

from ..columnar import resolve_layout
from ..lineage import EventSpace
from ..obs.metrics import DEFAULT_METRICS_INTERVAL
from ..obs.trace import DEFAULT_TRACE_SAMPLE_RATE
from ..options import TRANSPORTS, ExecutionOptions, deprecated_config_call
from ..recovery.types import RecoveryEvent
from ..relation import Schema, TPRelation, TPTuple, stable_key_hash
from ..runtime import (
    SOURCE_CHANNEL,
    ChannelClosed,
    Placement,
    RuntimeJob,
    WorkerReport,
    WorkerStartError,
    get_transport,
)
from .elements import LEFT, StreamElement, StreamEvent, Tagged, Watermark
from .operators import (
    continuous_join,
    continuous_output_schema,
    theta_from_pairs,
)
from .source import SourceStats, merge_tagged


@dataclass(frozen=True)
class StreamStats:
    """Planner-visible statistics of one registered stream.

    A stream is unbounded in principle, so these are *expected* figures —
    replay sources derived from a finite relation know them exactly; live
    sources may estimate or omit them.  The shard/partition planners treat a
    missing value as "unknown, do not parallelise".
    """

    cardinality: int
    attribute_distinct_counts: dict

    def distinct(self, attribute: str) -> int:
        """Expected distinct-value count of one attribute (0 when unknown)."""
        return self.attribute_distinct_counts.get(attribute, 0)


@dataclass(frozen=True)
class StreamDef:
    """A registered stream: schema, event space and a replayable element source.

    ``replay`` returns a *fresh* iterator of stream elements each time it is
    called, so the same registered stream can serve several queries.
    ``stats`` optionally carries the expected cardinality / key selectivity
    the partition planner consults when choosing per-stage worker counts.
    """

    schema: Schema
    events: EventSpace
    replay: Callable[[], Iterable[StreamElement]]
    name: str = ""
    stats: Optional[StreamStats] = None


#: Valid transports of a partitioned run (legacy name: the knob that picks
#: one was historically called ``workers``).
WORKER_BACKENDS = TRANSPORTS


def StreamQueryConfig(
    partitions: int = 1,
    micro_batch_size: int = 64,
    buffer_capacity: int = 1024,
    workers: str = "threads",
    materialize_probabilities: bool = False,
    early_emit: bool = False,
    placement: Optional[Placement] = None,
    metrics: bool = False,
    metrics_interval: float = DEFAULT_METRICS_INTERVAL,
    trace: bool = False,
    trace_sample_rate: float = DEFAULT_TRACE_SAMPLE_RATE,
    **new_knobs,
) -> ExecutionOptions:
    """Deprecated: the historical config constructor of a continuous query.

    Returns a :class:`repro.ExecutionOptions` carrying the same knobs —
    ``workers=`` maps onto the canonical ``transport=`` field, and any
    new-style knob (``checkpoint_interval``, ``restart_limit``,
    ``seat_timeout``) passes through — so every old call site keeps
    working while emitting a :class:`DeprecationWarning`.
    """
    deprecated_config_call(
        "StreamQueryConfig",
        "construct repro.ExecutionOptions instead (the workers= kwarg is "
        "now transport=)",
    )
    return ExecutionOptions(
        transport=workers,
        partitions=partitions,
        micro_batch_size=micro_batch_size,
        buffer_capacity=buffer_capacity,
        materialize_probabilities=materialize_probabilities,
        early_emit=early_emit,
        placement=placement,
        metrics=metrics,
        metrics_interval=metrics_interval,
        trace=trace,
        trace_sample_rate=trace_sample_rate,
        **new_knobs,
    )


def summarize_latency_ms(samples: Sequence[float]) -> dict:
    """Mean / p50 / p95 / max of a latency sample list, in milliseconds.

    Shared by :class:`StreamQueryResult` and the dataflow layer's
    :class:`~repro.dataflow.NodeResult`, so both subsystems report
    identically computed percentiles.
    """
    if not samples:
        return {"mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0}
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "mean_ms": 1000.0 * sum(ordered) / count,
        "p50_ms": 1000.0 * ordered[count // 2],
        "p95_ms": 1000.0 * ordered[min(count - 1, (95 * count) // 100)],
        "max_ms": 1000.0 * ordered[-1],
    }


@dataclass
class StreamQueryResult:
    """The finalized output of a continuous query run, with run statistics."""

    relation: TPRelation
    events_processed: int
    outputs_emitted: int
    elapsed_seconds: float
    emit_latencies: List[float] = field(default_factory=list)
    partitions: int = 1
    late_dropped: int = 0
    backpressure_blocks: int = 0
    #: The transport that actually ran (``inline`` for single-partition
    #: runs; the fallback transport when workers could not start).
    workers: str = "threads"
    #: Final per-worker metrics snapshots (empty unless ``config.metrics``).
    metrics_snapshots: List[dict] = field(default_factory=list)
    #: Every span the run recorded (empty unless ``config.trace``).
    trace_spans: List[dict] = field(default_factory=list)
    #: Seat recoveries the run performed (empty on an unfailed run, and
    #: always empty unless ``options.restart_limit`` enabled recovery).
    recovery_events: List[RecoveryEvent] = field(default_factory=list)

    @property
    def events_per_second(self) -> float:
        """Ingest throughput of the run."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.events_processed / self.elapsed_seconds

    def latency_summary(self) -> dict:
        """Mean / p50 / p95 / max emit latency in milliseconds."""
        return summarize_latency_ms(self.emit_latencies)

    def metrics(self):
        """The run's final worker metrics as a
        :class:`repro.obs.MetricsAggregator` (``None`` when the run was
        not instrumented)."""
        if not self.metrics_snapshots:
            return None
        from ..obs.metrics import MetricsAggregator

        aggregator = MetricsAggregator()
        aggregator.update_all(self.metrics_snapshots)
        return aggregator

    def recoveries(self) -> List[RecoveryEvent]:
        """Seat recoveries the run performed: who died, which checkpoint
        the replacement restored, how many elements were replayed."""
        return list(self.recovery_events)

    def explain_analyze(self) -> str:
        """``EXPLAIN ANALYZE``-style report of the finished run.

        Run shape and latency percentiles always; worker metrics when the
        run was instrumented; one line per seat recovery when any failure
        was survived.
        """
        latency = self.latency_summary()
        lines = [
            f"StreamQuery run: backend={self.workers} "
            f"partitions={self.partitions} "
            f"events={self.events_processed} outputs={self.outputs_emitted} "
            f"elapsed={self.elapsed_seconds:.3f}s "
            f"({self.events_per_second:.0f} ev/s) "
            f"late_dropped={self.late_dropped} "
            f"backpressure_blocks={self.backpressure_blocks}",
            f"  emit latency: p50 {latency['p50_ms']:.2f}ms "
            f"p95 {latency['p95_ms']:.2f}ms max {latency['max_ms']:.2f}ms",
        ]
        if self.recovery_events:
            lines.append(f"recoveries: {len(self.recovery_events)}")
            lines.extend(f"  {event.describe()}" for event in self.recovery_events)
        aggregated = self.metrics()
        if aggregated is not None:
            lines.append("worker metrics:")
            lines.extend(
                "  " + line for line in aggregated.render_report().splitlines()
            )
        return "\n".join(lines)

    def trace(self):
        """The run's spans as a :class:`repro.obs.TraceAggregator`.

        ``None`` when the run was not traced (or nothing was sampled).
        """
        if not self.trace_spans:
            return None
        from ..obs.trace import TraceAggregator

        aggregator = TraceAggregator()
        aggregator.add_spans(self.trace_spans)
        return aggregator

    def explain_tuple(self, key) -> str:
        """Provenance of one settled tuple: lineage joined with its trace.

        ``key`` is either a full fact tuple (exact match) or a scalar that
        any fact attribute may equal.  The report shows the tuple's
        interval, probability and lineage tree, then every sampled
        timeline whose spans contributed to it.
        """
        from ..obs.trace import find_tuples, render_tuple_explanation

        matches = find_tuples(self.relation, key)
        if not matches:
            return f"no settled tuple matches {key!r}"
        aggregator = self.trace()
        return "\n\n".join(
            render_tuple_explanation(tp_tuple, aggregator) for tp_tuple in matches
        )


def run_stream_shards(
    transport_name: str,
    specs: Sequence,
    merged: Iterable[Tagged],
    theta,
    stamp_right: bool,
    micro_batch_size: int = 64,
    buffer_capacity: int = 1024,
    placement: Optional[Placement] = None,
    metrics: bool = False,
    metrics_interval: float = DEFAULT_METRICS_INTERVAL,
    collector: Optional[object] = None,
    trace: bool = False,
    trace_sample_rate: float = DEFAULT_TRACE_SAMPLE_RATE,
    trace_collector: Optional[object] = None,
    result_timeout: Optional[float] = None,
) -> tuple[List[WorkerReport], int, int, str]:
    """The one stream router: feed a merged element sequence into a session.

    Events are hash-routed to the shard worker owning their join key (the
    stable, ``PYTHONHASHSEED``-independent hash shared with the batch shard
    planner), watermarks are broadcast to every worker, per-shard element
    order is preserved by the transport's FIFO channels, and the bounded
    channels backpressure this router.  Ingest clocks are stamped before an
    element can sit in any queue, so emit latency includes queueing (and, on
    the serialized transports, encoding) time; the inline transport stamps
    at processing time instead, where the two coincide.

    With ``trace`` on, this loop is also the trace *source*: it samples
    events deterministically, records the root ``source`` span, and attaches
    the trace context the workers propagate.

    Returns ``(reports, events_processed, backpressure_blocks, transport)``
    with reports in worker-index order — deterministic for a fixed partition
    count.
    """
    partitions = len(specs)
    job = RuntimeJob(
        tuple(specs),
        micro_batch_size,
        buffer_capacity,
        metrics=metrics or collector is not None,
        metrics_interval=metrics_interval,
        trace=trace or trace_collector is not None,
        result_timeout=result_timeout,
    )
    sampler = None
    driver_tracer = None
    if job.trace:
        from ..obs.trace import Tracer, TraceSampler, span_detail

        sampler = TraceSampler(trace_sample_rate)
        driver_tracer = Tracer("driver")
    session = get_transport(transport_name).start(job, placement)
    if collector is not None:
        collector.attach(session)
    if trace_collector is not None:
        trace_collector.attach(session)
    events_processed = 0
    with session:
        stamp = session.stamps_ingest
        try:
            for tagged in merged:
                element = tagged.element
                if isinstance(element, StreamEvent):
                    events_processed += 1
                    # Right/full outer joins treat right events as positives
                    # too (mirrored maintainer), so both sides get an
                    # ingestion stamp for emit latency.
                    if stamp and (tagged.side == LEFT or stamp_right):
                        tagged = Tagged(tagged.side, element, time.perf_counter())
                    if sampler is not None:
                        trace_id = sampler.sample()
                        if trace_id is not None:
                            now = time.perf_counter()
                            root = driver_tracer.record(
                                "source",
                                trace_id,
                                None,
                                now,
                                now,
                                side=tagged.side,
                                **span_detail(element),
                            )
                            tagged = Tagged(
                                tagged.side,
                                element,
                                tagged.ingest_clock,
                                (trace_id, root),
                            )
                    if partitions > 1:
                        key = (
                            theta.left_key(element.tuple)
                            if tagged.side == LEFT
                            else theta.right_key(element.tuple)
                        )
                        index = stable_key_hash(key) % partitions
                    else:
                        index = 0
                    session.send(index, None, tagged)
                elif isinstance(element, Watermark):
                    for index in range(partitions):
                        session.send(index, SOURCE_CHANNEL, tagged)
        except ChannelClosed:
            # A worker died and closed its channel; stop routing — the
            # failure is re-raised by finish() after every worker is joined.
            pass
        for index in range(partitions):
            session.done(index)
        reports = session.finish()
        blocks = session.backpressure_blocks
    if collector is not None:
        collector.complete(
            [report.metrics for report in reports if report.metrics is not None]
        )
    if trace_collector is not None:
        span_lists = [report.spans for report in reports if report.spans]
        if driver_tracer is not None:
            span_lists.append(driver_tracer.dump())
        trace_collector.complete(span_lists)
    return reports, events_processed, blocks, session.name


class StreamQuery:
    """A continuous TP join registered against catalogued streams.

    Args:
        catalog: any object with ``lookup_stream(name) -> StreamDef`` (the
            engine catalog satisfies this).
        kind: ``"anti"`` or ``"left_outer"``.
        left: name of the positive (left) registered stream.
        right: name of the negative (right) registered stream.
        on: ``(left_attribute, right_attribute)`` equality pairs (θ).
        config: :class:`repro.ExecutionOptions` (legacy
            ``StreamQueryConfig(...)`` calls still produce one); defaults
            to single-partition inline runs.
    """

    def __init__(
        self,
        catalog,
        kind: str,
        left: str,
        right: str,
        on: Sequence[tuple[str, str]] = (),
        config: ExecutionOptions | None = None,
    ) -> None:
        self._catalog = catalog
        self._kind = kind
        self._left_name = left
        self._right_name = right
        self._on = tuple(on)
        self._config = config or ExecutionOptions()
        # Validate eagerly: unknown streams and bad θ fail at registration.
        left_def = catalog.lookup_stream(left)
        right_def = catalog.lookup_stream(right)
        self._theta = theta_from_pairs(left_def.schema, right_def.schema, self._on)
        continuous_join(kind, left_def.schema, right_def.schema, self._on)
        self._collector = None
        if self._config.metrics:
            from ..obs.collector import MetricsCollector

            self._collector = MetricsCollector()
        self._trace_collector = None
        if self._config.trace:
            from ..obs.trace import TraceCollector

            self._trace_collector = TraceCollector()

    @property
    def config(self) -> ExecutionOptions:
        return self._config

    def metrics(self):
        """Aggregated worker metrics: live during :meth:`run`, final after.

        Returns a :class:`repro.obs.MetricsAggregator`, or ``None`` when
        the config has ``metrics=False`` or nothing has been collected yet.
        """
        if self._collector is None:
            return None
        return self._collector.aggregate()

    def trace(self):
        """Aggregated span timelines: live during :meth:`run`, final after.

        Returns a :class:`repro.obs.TraceAggregator`, or ``None`` when the
        config has ``trace=False`` or no span has been recorded yet.
        """
        if self._trace_collector is None:
            return None
        return self._trace_collector.aggregate()

    def describe(self) -> str:
        condition = " AND ".join(f"{left} = {right}" for left, right in self._on) or "true"
        backend = ""
        if self.effective_partitions > 1 and self._config.transport != "threads":
            backend = f", workers={self._config.transport}"
        return (
            f"StreamQuery[{self._kind}] {self._left_name} × {self._right_name} "
            f"on {condition} (partitions={self.effective_partitions}{backend})"
        )

    @property
    def effective_partitions(self) -> int:
        """The partition count a run will actually use.

        Non-equi θ cannot be hash-partitioned by key: such queries run on
        one partition regardless of the configured count.
        """
        if not self._theta.is_equi:
            return 1
        return self._config.partitions

    def _shard_spec(self):
        """The picklable worker spec every transport rebuilds the join from."""
        # Imported lazily: repro.parallel depends on stream submodules, so a
        # top-level import here would be circular during package init.
        from ..parallel.stream_exec import StreamShardSpec

        left_def = self._catalog.lookup_stream(self._left_name)
        right_def = self._catalog.lookup_stream(self._right_name)
        event_probabilities = None
        if self._config.materialize_probabilities:
            merged_events = left_def.events.merge(right_def.events)
            event_probabilities = {
                name: merged_events.probability(name) for name in merged_events.names()
            }
        return StreamShardSpec(
            kind=self._kind,
            left_attributes=left_def.schema.attributes,
            right_attributes=right_def.schema.attributes,
            on=self._on,
            left_name=left_def.name or self._left_name,
            right_name=right_def.name or self._right_name,
            event_probabilities=event_probabilities,
            # Resolved here, driver-side, so a columnar request on a
            # numpy-less host degrades (with a warning) before any worker
            # spec ships.
            layout=resolve_layout(self._config.layout),
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self, merge_seed: Optional[int] = None, chaos: Optional[object] = None
    ) -> StreamQueryResult:
        """Execute the query over a fresh replay of both streams.

        ``chaos`` is the failure-injection seam of the recovering sockets
        router (see :class:`repro.recovery.chaos.ChaosInjector`): a hook
        called once per routed element, used by the chaos tests and
        ``bench_recovery`` to kill seats mid-run.  Ignored — no failure
        is injected — on every other execution path.
        """
        left_def = self._catalog.lookup_stream(self._left_name)
        right_def = self._catalog.lookup_stream(self._right_name)
        left_elements = left_def.replay()
        right_elements = right_def.replay()
        merged = merge_tagged(left_elements, right_elements, seed=merge_seed)
        partitions = self.effective_partitions
        transport = self._config.transport if partitions > 1 else "inline"
        spec = self._shard_spec()
        specs = tuple(replace(spec, index=index) for index in range(partitions))
        stamp_right = self._kind in ("right_outer", "full_outer")
        recoveries: List[RecoveryEvent] = []
        started = time.perf_counter()
        try:
            if transport == "sockets" and self._config.recovery_enabled:
                from ..recovery.driver import run_recovering_stream_shards

                (
                    reports,
                    events_processed,
                    blocks,
                    backend,
                    recoveries,
                ) = run_recovering_stream_shards(
                    specs,
                    merged,
                    self._theta,
                    stamp_right,
                    options=self._config,
                    collector=self._collector,
                    trace_collector=self._trace_collector,
                    chaos=chaos,
                )
            else:
                reports, events_processed, blocks, backend = run_stream_shards(
                    transport,
                    specs,
                    merged,
                    self._theta,
                    stamp_right,
                    micro_batch_size=self._config.micro_batch_size,
                    buffer_capacity=self._config.buffer_capacity,
                    placement=self._config.placement,
                    metrics=self._config.metrics,
                    metrics_interval=self._config.metrics_interval,
                    collector=self._collector,
                    trace=self._config.trace,
                    trace_sample_rate=self._config.trace_sample_rate,
                    trace_collector=self._trace_collector,
                    result_timeout=self._config.seat_timeout,
                )
        except WorkerStartError as error:
            # Workers unavailable (sandbox without fork, unreachable host):
            # degrade to the thread transport — safe, no element was
            # consumed yet — and record the backend that actually ran.
            warnings.warn(
                f"{transport!r} workers could not start "
                f"({error}); falling back to the thread transport",
                RuntimeWarning,
                stacklevel=2,
            )
            reports, events_processed, blocks, backend = run_stream_shards(
                "threads",
                specs,
                merged,
                self._theta,
                stamp_right,
                micro_batch_size=self._config.micro_batch_size,
                buffer_capacity=self._config.buffer_capacity,
                metrics=self._config.metrics,
                metrics_interval=self._config.metrics_interval,
                collector=self._collector,
                trace=self._config.trace,
                trace_sample_rate=self._config.trace_sample_rate,
                trace_collector=self._trace_collector,
            )
        elapsed = time.perf_counter() - started

        outputs: List[TPTuple] = []
        latencies: List[float] = []
        late = 0
        for report in reports:
            outputs.extend(report.outputs)
            latencies.extend(report.emit_latencies)
            late += report.late_dropped

        events = left_def.events.merge(right_def.events)
        schema = continuous_output_schema(
            self._kind,
            left_def.schema,
            right_def.schema,
            right_def.name or self._right_name,
        )
        relation = TPRelation(
            schema, outputs, events, name=self.describe(), check_constraint=False
        )
        # Sources evict events beyond their lateness bound at ingestion;
        # surface those too (a replay that exposes stats, e.g. StreamSource).
        for elements in (left_elements, right_elements):
            stats = getattr(elements, "stats", None)
            if isinstance(stats, SourceStats):
                late += stats.late_evicted
        return StreamQueryResult(
            relation=relation,
            events_processed=events_processed,
            outputs_emitted=len(outputs),
            elapsed_seconds=elapsed,
            emit_latencies=latencies,
            partitions=partitions,
            late_dropped=late,
            backpressure_blocks=blocks,
            workers=backend,
            metrics_snapshots=[
                report.metrics for report in reports if report.metrics is not None
            ],
            trace_spans=(
                self._trace_collector.spans()
                if self._trace_collector is not None
                else []
            ),
            recovery_events=recoveries,
        )
