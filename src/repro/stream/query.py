"""Continuous queries: registration, parallel execution, backpressure.

A :class:`StreamQuery` binds a continuous TP join to two *registered streams*
(:class:`StreamDef` entries held by the engine catalog) and executes it to
finalization.  Execution is hash-partitioned: with an equi-join θ, every
event is routed to a worker by the hash of its join key — all events that can
ever form a window together share a key, so partitions are independent — and
watermarks are broadcast to every worker.  Each worker thread pulls
micro-batches from a :class:`~repro.stream.buffer.BoundedBuffer`, whose hard
capacity backpressures the router (and the sources behind it) when a worker
falls behind.

With ``partitions=1`` (or a non-equi θ, which cannot be key-partitioned) the
query runs inline on the calling thread — the fast path for small streams
and the engine's SQL entry point.

The module avoids importing :mod:`repro.engine`; the catalog is used through
its ``lookup_stream`` method only, so the engine can depend on this package
without a cycle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from ..lineage import EventSpace
from ..relation import Schema, TPRelation, TPTuple
from .buffer import BoundedBuffer, BufferClosed
from .elements import LEFT, StreamElement, StreamEvent, Tagged, Watermark
from .operators import ContinuousJoinBase, continuous_join, theta_from_pairs
from .source import SourceStats, merge_tagged


@dataclass(frozen=True)
class StreamDef:
    """A registered stream: schema, event space and a replayable element source.

    ``replay`` returns a *fresh* iterator of stream elements each time it is
    called, so the same registered stream can serve several queries.
    """

    schema: Schema
    events: EventSpace
    replay: Callable[[], Iterable[StreamElement]]
    name: str = ""


@dataclass(frozen=True)
class StreamQueryConfig:
    """Execution knobs of a continuous query."""

    partitions: int = 1
    micro_batch_size: int = 64
    buffer_capacity: int = 1024

    def __post_init__(self) -> None:
        if self.partitions <= 0:
            raise ValueError("partitions must be positive")


@dataclass
class StreamQueryResult:
    """The finalized output of a continuous query run, with run statistics."""

    relation: TPRelation
    events_processed: int
    outputs_emitted: int
    elapsed_seconds: float
    emit_latencies: List[float] = field(default_factory=list)
    partitions: int = 1
    late_dropped: int = 0
    backpressure_blocks: int = 0

    @property
    def events_per_second(self) -> float:
        """Ingest throughput of the run."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.events_processed / self.elapsed_seconds

    def latency_summary(self) -> dict:
        """Mean / p50 / p95 / max emit latency in milliseconds."""
        if not self.emit_latencies:
            return {"mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0}
        ordered = sorted(self.emit_latencies)
        count = len(ordered)
        return {
            "mean_ms": 1000.0 * sum(ordered) / count,
            "p50_ms": 1000.0 * ordered[count // 2],
            "p95_ms": 1000.0 * ordered[min(count - 1, (95 * count) // 100)],
            "max_ms": 1000.0 * ordered[-1],
        }


class StreamQuery:
    """A continuous TP join registered against catalogued streams.

    Args:
        catalog: any object with ``lookup_stream(name) -> StreamDef`` (the
            engine catalog satisfies this).
        kind: ``"anti"`` or ``"left_outer"``.
        left: name of the positive (left) registered stream.
        right: name of the negative (right) registered stream.
        on: ``(left_attribute, right_attribute)`` equality pairs (θ).
        config: execution knobs; defaults to single-partition inline runs.
    """

    def __init__(
        self,
        catalog,
        kind: str,
        left: str,
        right: str,
        on: Sequence[tuple[str, str]] = (),
        config: StreamQueryConfig | None = None,
    ) -> None:
        self._catalog = catalog
        self._kind = kind
        self._left_name = left
        self._right_name = right
        self._on = tuple(on)
        self._config = config or StreamQueryConfig()
        # Validate eagerly: unknown streams and bad θ fail at registration.
        left_def = catalog.lookup_stream(left)
        right_def = catalog.lookup_stream(right)
        self._theta = theta_from_pairs(left_def.schema, right_def.schema, self._on)
        continuous_join(kind, left_def.schema, right_def.schema, self._on)

    @property
    def config(self) -> StreamQueryConfig:
        return self._config

    def describe(self) -> str:
        condition = " AND ".join(f"{l} = {r}" for l, r in self._on) or "true"
        return (
            f"StreamQuery[{self._kind}] {self._left_name} × {self._right_name} "
            f"on {condition} (partitions={self._effective_partitions()})"
        )

    def _effective_partitions(self) -> int:
        # Non-equi θ cannot be hash-partitioned by key: run on one partition.
        if not self._theta.is_equi:
            return 1
        return self._config.partitions

    def _build_join(self) -> ContinuousJoinBase:
        left_def = self._catalog.lookup_stream(self._left_name)
        right_def = self._catalog.lookup_stream(self._right_name)
        return continuous_join(
            self._kind,
            left_def.schema,
            right_def.schema,
            self._on,
            left_name=left_def.name or self._left_name,
            right_name=right_def.name or self._right_name,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, merge_seed: Optional[int] = None) -> StreamQueryResult:
        """Execute the query over a fresh replay of both streams."""
        left_def = self._catalog.lookup_stream(self._left_name)
        right_def = self._catalog.lookup_stream(self._right_name)
        left_elements = left_def.replay()
        right_elements = right_def.replay()
        merged = merge_tagged(left_elements, right_elements, seed=merge_seed)
        partitions = self._effective_partitions()
        started = time.perf_counter()
        if partitions == 1:
            outputs, joins, events_processed, blocks = self._run_inline(merged)
        else:
            outputs, joins, events_processed, blocks = self._run_parallel(
                merged, partitions
            )
        elapsed = time.perf_counter() - started

        events = left_def.events.merge(right_def.events)
        schema = joins[0].output_schema()
        relation = TPRelation(
            schema, outputs, events, name=self.describe(), check_constraint=False
        )
        latencies: List[float] = []
        late = 0
        for join in joins:
            latencies.extend(join.emit_latencies)
            late += (
                join.maintainer.stats.late_positives_dropped
                + join.maintainer.stats.late_negatives_dropped
            )
        # Sources evict events beyond their lateness bound at ingestion;
        # surface those too (a replay that exposes stats, e.g. StreamSource).
        for elements in (left_elements, right_elements):
            stats = getattr(elements, "stats", None)
            if isinstance(stats, SourceStats):
                late += stats.late_evicted
        return StreamQueryResult(
            relation=relation,
            events_processed=events_processed,
            outputs_emitted=len(outputs),
            elapsed_seconds=elapsed,
            emit_latencies=latencies,
            partitions=partitions,
            late_dropped=late,
            backpressure_blocks=blocks,
        )

    def _run_inline(self, merged: Iterable[Tagged]):
        join = self._build_join()
        outputs: List[TPTuple] = []
        events_processed = 0
        for tagged in merged:
            if isinstance(tagged.element, StreamEvent):
                events_processed += 1
            outputs.extend(join.process(tagged))
        outputs.extend(join.close())
        return outputs, [join], events_processed, 0

    def _run_parallel(self, merged: Iterable[Tagged], partitions: int):
        joins = [self._build_join() for _ in range(partitions)]
        buffers: List[BoundedBuffer[Tagged]] = [
            BoundedBuffer(self._config.buffer_capacity) for _ in range(partitions)
        ]
        outputs_per_worker: List[List[TPTuple]] = [[] for _ in range(partitions)]
        failures: List[BaseException] = []

        def work(index: int) -> None:
            join = joins[index]
            sink = outputs_per_worker[index]
            try:
                while True:
                    batch = buffers[index].take_batch(self._config.micro_batch_size)
                    if batch is None:
                        break
                    for tagged in batch:
                        sink.extend(join.process(tagged))
                sink.extend(join.close())
            except BaseException as error:  # noqa: BLE001 - reported to caller
                failures.append(error)
                # Close our buffer so the router cannot block forever on a
                # full buffer nobody drains; it sees BufferClosed and stops.
                buffers[index].close()

        workers = [
            threading.Thread(target=work, args=(index,), name=f"stream-worker-{index}")
            for index in range(partitions)
        ]
        for worker in workers:
            worker.start()

        events_processed = 0
        theta = self._theta
        try:
            for tagged in merged:
                element = tagged.element
                if isinstance(element, StreamEvent):
                    events_processed += 1
                    if tagged.side == LEFT:
                        key = theta.left_key(element.tuple)
                        # Stamp ingestion here, before the element can sit in
                        # a worker's buffer: emit latency includes queueing.
                        tagged = Tagged(tagged.side, element, time.perf_counter())
                    else:
                        key = theta.right_key(element.tuple)
                    buffers[hash(key) % partitions].put(tagged)
                elif isinstance(element, Watermark):
                    for buffer in buffers:
                        buffer.put(tagged)
        except BufferClosed:
            # A worker died and closed its buffer; stop routing — the
            # failure is re-raised after every worker is joined.
            pass
        finally:
            for buffer in buffers:
                buffer.close()
            for worker in workers:
                worker.join()
        if failures:
            raise failures[0]

        outputs: List[TPTuple] = []
        for worker_outputs in outputs_per_worker:
            outputs.extend(worker_outputs)
        blocks = sum(buffer.put_blocks for buffer in buffers)
        return outputs, joins, events_processed, blocks
