"""Ingestion layer: watermarking sources over out-of-order event iterators.

A :class:`StreamSource` adapts any iterator of TP tuples (in arrival order,
which may be arbitrarily out of event-time order) into a well-formed element
stream:

* every tuple is wrapped in a :class:`StreamEvent` with its arrival sequence
  number;
* a per-source **watermark** is maintained as ``max(start seen) - lateness``
  and emitted every ``watermark_every`` events, so downstream operators learn
  how far event time has provably progressed;
* events arriving *behind* the current watermark (disorder larger than the
  configured lateness bound) are **evicted** at the door and counted, never
  forwarded — the bounded-lateness contract downstream operators rely on;
* exhaustion of the underlying iterator emits a closing watermark
  (:data:`repro.stream.elements.CLOSED`), finalizing all remaining windows.

:func:`merge_tagged` interleaves two sources into the single tagged element
sequence the continuous join operators consume; the default round-robin
interleaving preserves each source's internal order (all the semantics
require) while exercising arbitrary cross-source arrival interleavings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..relation import TPTuple
from .elements import CLOSED, LEFT, RIGHT, StreamElement, StreamEvent, Tagged, Watermark


@dataclass
class SourceStats:
    """Counters maintained by one ingesting source."""

    events_in: int = 0
    events_emitted: int = 0
    late_evicted: int = 0
    watermarks_emitted: int = 0
    max_event_start: Optional[int] = None


class StreamSource:
    """Wrap an arrival-ordered tuple iterator into a watermarked element stream.

    Args:
        tuples: TP tuples in arrival order (event-time order not required).
        lateness: bounded-lateness allowance; the watermark trails the
            largest interval start seen by this many time points.  Disorder
            within the bound is handled exactly; events later than the bound
            are evicted and counted in :attr:`stats`.
        watermark_every: emit a watermark after every this-many events.
        name: label used in diagnostics.
    """

    def __init__(
        self,
        tuples: Iterable[TPTuple],
        lateness: int = 0,
        watermark_every: int = 1,
        name: str = "",
    ) -> None:
        if lateness < 0:
            raise ValueError("lateness must be non-negative")
        if watermark_every <= 0:
            raise ValueError("watermark_every must be positive")
        self._tuples = tuples
        self._lateness = lateness
        self._watermark_every = watermark_every
        self.name = name
        self.stats = SourceStats()
        self._watermark: float = float("-inf")

    @property
    def watermark(self) -> float:
        """The current watermark value of this source."""
        return self._watermark

    def __iter__(self) -> Iterator[StreamElement]:
        since_watermark = 0
        for tp_tuple in self._tuples:
            self.stats.events_in += 1
            if tp_tuple.start < self._watermark:
                # Later than the lateness bound: evict at ingestion.
                self.stats.late_evicted += 1
                continue
            if (
                self.stats.max_event_start is None
                or tp_tuple.start > self.stats.max_event_start
            ):
                self.stats.max_event_start = tp_tuple.start
            yield StreamEvent(tp_tuple, sequence=self.stats.events_emitted)
            self.stats.events_emitted += 1
            since_watermark += 1
            if since_watermark >= self._watermark_every:
                since_watermark = 0
                advanced = self.stats.max_event_start - self._lateness
                if advanced > self._watermark:
                    self._watermark = advanced
                    self.stats.watermarks_emitted += 1
                    yield Watermark(advanced)
        self._watermark = CLOSED
        self.stats.watermarks_emitted += 1
        yield Watermark(CLOSED)


def merge_tagged(
    left: Iterable[StreamElement],
    right: Iterable[StreamElement],
    seed: Optional[int] = None,
) -> Iterator[Tagged]:
    """Interleave two element streams into one tagged sequence.

    With ``seed=None`` the interleaving is round-robin; with a seed, each step
    picks a random non-exhausted side, exercising arbitrary cross-source
    arrival orders (each source's internal order is preserved, which is all
    the watermark semantics require).
    """
    rng = random.Random(seed) if seed is not None else None
    iterators = {LEFT: iter(left), RIGHT: iter(right)}
    open_sides = [LEFT, RIGHT]
    turn = 0
    while open_sides:
        if rng is None:
            side = open_sides[turn % len(open_sides)]
            turn += 1
        else:
            side = rng.choice(open_sides)
        try:
            element = next(iterators[side])
        except StopIteration:
            open_sides.remove(side)
            continue
        yield Tagged(side, element)
