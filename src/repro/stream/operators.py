"""Continuous TP join operators over watermarked element streams.

The two operators mirror the batch joins whose output depends only on the
windows of the positive relation (``WU``/``WN``/``WO`` of ``r`` w.r.t. ``s``,
the first two rows of the paper's Table II):

* :class:`ContinuousAntiJoin` — ``r ▷ s``: unmatched and negating windows.
* :class:`ContinuousLeftOuterJoin` — ``r ⟕ s``: all three window classes.

Both consume :class:`~repro.stream.elements.Tagged` stream elements (events
and watermarks of either side) and emit *finalized* output tuples: each
output is produced exactly once, when the combined watermark passes the end
of its originating positive tuple, and is never retracted.  Window
derivation replays the unchanged batch sweeps over each completed overlap
group, so a continuous run over any delivery order (within the lateness
bound) emits exactly the batch join's output set.

Per-tuple emit latency — the wall-clock span between the ingestion of a
positive event and the emission of its finalized outputs — is recorded in
:attr:`ContinuousJoinBase.emit_latencies` for the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from ..core.concat import (
    combined_output_schema as joined_output_schema,
    window_to_positive_tuple,
    window_to_tuple,
)
from ..core.lawan import iter_lawan
from ..core.windows import WindowClass
from ..relation import Schema, TPTuple, ThetaCondition, theta_or_true
from .elements import LEFT, RIGHT, StreamEvent, Tagged, Watermark
from .incremental import FinalizedGroup, IncrementalWindowMaintainer


@dataclass
class OperatorStats:
    """Output-side counters of one continuous operator."""

    outputs_emitted: int = 0
    groups_finalized: int = 0


def theta_from_pairs(
    left_schema: Schema,
    right_schema: Schema,
    on: Sequence[tuple[str, str]],
) -> ThetaCondition:
    """Build the θ condition for ``(left_attr, right_attr)`` equality pairs."""
    return theta_or_true(left_schema, right_schema, on)


class ContinuousJoinBase:
    """Shared machinery of the continuous joins with negation."""

    def __init__(
        self,
        left_schema: Schema,
        right_schema: Schema,
        theta: ThetaCondition,
        left_name: str = "r",
        right_name: str = "s",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._left_schema = left_schema
        self._right_schema = right_schema
        self._theta = theta
        self._left_name = left_name
        self._right_name = right_name
        self._clock = clock
        self._maintainer = IncrementalWindowMaintainer(theta)
        self.stats = OperatorStats()
        #: Per finalized positive tuple: seconds from ingestion to emission.
        self.emit_latencies: List[float] = []

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def theta(self) -> ThetaCondition:
        return self._theta

    @property
    def maintainer(self) -> IncrementalWindowMaintainer:
        """The underlying incremental window state (exposed for monitoring)."""
        return self._maintainer

    def output_schema(self) -> Schema:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # element processing
    # ------------------------------------------------------------------ #
    def process(self, tagged: Tagged) -> List[TPTuple]:
        """Apply one tagged element; return any newly finalized output tuples."""
        element = tagged.element
        if isinstance(element, StreamEvent):
            if tagged.side == LEFT:
                # Emit latency is measured per positive tuple, so only the
                # positive path pays for a clock reading; a router-stamped
                # clock wins so buffered queueing time is included.
                now = (
                    tagged.ingest_clock
                    if tagged.ingest_clock is not None
                    else self._clock()
                )
                self._maintainer.add_positive(element.tuple, ingest_clock=now)
            elif tagged.side == RIGHT:
                self._maintainer.add_negative(element.tuple)
            else:
                raise ValueError(f"unknown stream side {tagged.side!r}")
            return []
        if isinstance(element, Watermark):
            if tagged.side == LEFT:
                finalized = self._maintainer.advance_left(element.value)
            else:
                finalized = self._maintainer.advance_right(element.value)
            return self._emit(finalized)
        raise TypeError(f"unsupported stream element {element!r}")

    def run(self, tagged_elements: Iterable[Tagged]) -> Iterator[TPTuple]:
        """Drive the operator over a merged element sequence, then close it."""
        for tagged in tagged_elements:
            yield from self.process(tagged)
        yield from self.close()

    def close(self) -> List[TPTuple]:
        """Finalize all remaining windows (both sides closed)."""
        return self._emit(self._maintainer.close())

    # ------------------------------------------------------------------ #
    # output formation
    # ------------------------------------------------------------------ #
    def _emit(self, finalized: Sequence[FinalizedGroup]) -> List[TPTuple]:
        outputs: List[TPTuple] = []
        if not finalized:
            return outputs
        emit_clock = self._clock()
        for group in finalized:
            self.stats.groups_finalized += 1
            self.emit_latencies.append(max(0.0, emit_clock - group.ingest_clock))
            outputs.extend(self._tuples_of(group))
        self.stats.outputs_emitted += len(outputs)
        return outputs

    def _tuples_of(self, finalized: FinalizedGroup) -> Iterator[TPTuple]:
        raise NotImplementedError


class ContinuousAntiJoin(ContinuousJoinBase):
    """Continuous TP anti join ``r ▷ s`` with watermark-driven finalization."""

    def output_schema(self) -> Schema:
        return self._left_schema

    def describe(self) -> str:
        return (
            f"ContinuousAntiJoin[{self._left_name} ▷ {self._right_name}] "
            f"on {self._theta.describe()}"
        )

    def _tuples_of(self, finalized: FinalizedGroup) -> Iterator[TPTuple]:
        for window in iter_lawan([finalized.group]):
            if window.window_class is WindowClass.OVERLAPPING:
                continue
            yield window_to_positive_tuple(window)


class ContinuousLeftOuterJoin(ContinuousJoinBase):
    """Continuous TP left outer join ``r ⟕ s`` with watermark-driven finalization."""

    def output_schema(self) -> Schema:
        return joined_output_schema(
            self._left_schema, self._right_schema, self._right_name
        )

    def describe(self) -> str:
        return (
            f"ContinuousLeftOuterJoin[{self._left_name} ⟕ {self._right_name}] "
            f"on {self._theta.describe()}"
        )

    def _tuples_of(self, finalized: FinalizedGroup) -> Iterator[TPTuple]:
        left_width = len(self._left_schema)
        right_width = len(self._right_schema)
        for window in iter_lawan([finalized.group]):
            yield window_to_tuple(window, left_width, right_width, left_is_positive=True)


#: Continuous operator class per join-kind name (mirrors the batch registry).
CONTINUOUS_OPERATORS = {
    "anti": ContinuousAntiJoin,
    "left_outer": ContinuousLeftOuterJoin,
}


def continuous_output_schema(
    kind: str, left_schema: Schema, right_schema: Schema, right_name: str = "s"
) -> Schema:
    """The output schema of a continuous join, without building the operator.

    Mirrors the per-class ``output_schema`` definitions above so callers
    that only need the schema (e.g. :class:`repro.stream.StreamQuery`
    wrapping a finished run) skip constructing a window maintainer.
    """
    if kind not in CONTINUOUS_OPERATORS:
        raise ValueError(
            f"continuous execution supports {sorted(CONTINUOUS_OPERATORS)}, not {kind!r}"
        )
    if kind == "anti":
        return left_schema
    return joined_output_schema(left_schema, right_schema, right_name)


def continuous_join(
    kind: str,
    left_schema: Schema,
    right_schema: Schema,
    on: Sequence[tuple[str, str]] = (),
    left_name: str = "r",
    right_name: str = "s",
) -> ContinuousJoinBase:
    """Instantiate a continuous join by kind name (``anti`` / ``left_outer``)."""
    try:
        operator_class = CONTINUOUS_OPERATORS[kind]
    except KeyError:
        raise ValueError(
            f"continuous execution supports {sorted(CONTINUOUS_OPERATORS)}, not {kind!r}"
        ) from None
    theta = theta_from_pairs(left_schema, right_schema, on)
    return operator_class(
        left_schema, right_schema, theta, left_name=left_name, right_name=right_name
    )
