"""Continuous TP join operators over watermarked element streams.

The operators mirror the batch joins of the paper's Table II.  The first two
depend only on the windows of the positive (left) relation:

* :class:`ContinuousAntiJoin` — ``r ▷ s``: unmatched and negating windows.
* :class:`ContinuousLeftOuterJoin` — ``r ⟕ s``: all three window classes.
* :class:`ContinuousInnerJoin` — ``r ⋈ s``: overlapping windows only.

Right and full outer joins additionally need the *reverse* windows — the
unmatched and negating windows of ``s`` with respect to ``r``.  They run a
second, mirrored :class:`~repro.stream.incremental.IncrementalWindowMaintainer`
whose positive side is the right stream (θ swapped), while the overlapping
windows keep coming from the forward maintainer so output lineages are
constructed operand-for-operand like the batch joins build them (which keeps
probabilities bitwise-comparable):

* :class:`ContinuousRightOuterJoin` — ``r ⟖ s``.
* :class:`ContinuousFullOuterJoin` — ``r ⟗ s``.

All operators consume :class:`~repro.stream.elements.Tagged` stream elements
(events and watermarks of either side) and emit *finalized* output tuples:
each output is produced exactly once, when the combined watermark passes the
end of its originating positive tuple, and is never retracted.  (The
retractable, early-emitting variant lives in :mod:`repro.dataflow`.)  Window
derivation replays the unchanged batch sweeps over each completed overlap
group, so a continuous run over any delivery order (within the lateness
bound) emits exactly the batch join's output set.

With ``materialize_probabilities=True`` (requires the merged event space)
output probabilities are computed inline by the maintainer-owned per-key
:class:`~repro.lineage.ProbabilityComputer` — the hash-cons intern table is
carried across all windows of a key for the operator's lifetime, and the
values stay bitwise-identical to a fresh per-tuple computation.

Per-tuple emit latency — the wall-clock span between the ingestion of a
positive event and the emission of its finalized outputs — is recorded in
:attr:`ContinuousJoinBase.emit_latencies` for the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from ..core.concat import (
    combined_output_schema as joined_output_schema,
    window_to_positive_tuple,
    window_to_tuple,
)
from ..core.joins import swap_theta
from ..core.lawan import iter_lawan
from ..core.overlap import OverlapGroup
from ..columnar import maintainer_class
from ..core.windows import WindowClass
from ..lineage import EventSpace
from ..relation import Schema, TPTuple, ThetaCondition, theta_or_true
from .elements import LEFT, RIGHT, StreamEvent, Tagged, Watermark
from .incremental import FinalizedGroup, IncrementalWindowMaintainer, OpenPositive


@dataclass
class OperatorStats:
    """Output-side counters of one continuous operator."""

    outputs_emitted: int = 0
    groups_finalized: int = 0


def theta_from_pairs(
    left_schema: Schema,
    right_schema: Schema,
    on: Sequence[tuple[str, str]],
) -> ThetaCondition:
    """Build the θ condition for ``(left_attr, right_attr)`` equality pairs."""
    return theta_or_true(left_schema, right_schema, on)


# --------------------------------------------------------------------------- #
# window-tuple derivation shared with the retractable dataflow operators
# --------------------------------------------------------------------------- #
#: Forward window classes each join kind turns into output tuples.
_FORWARD_CLASSES: dict[str, frozenset] = {
    "anti": frozenset({WindowClass.UNMATCHED, WindowClass.NEGATING}),
    "left_outer": frozenset(
        {WindowClass.UNMATCHED, WindowClass.OVERLAPPING, WindowClass.NEGATING}
    ),
    "inner": frozenset({WindowClass.OVERLAPPING}),
    "right_outer": frozenset({WindowClass.OVERLAPPING}),
    "full_outer": frozenset(
        {WindowClass.UNMATCHED, WindowClass.OVERLAPPING, WindowClass.NEGATING}
    ),
}

#: Kinds that also derive the reverse windows (positive side = right stream).
REVERSE_KINDS = frozenset({"right_outer", "full_outer"})


def forward_group_tuples(
    kind: str, group: OverlapGroup, left_width: int, right_width: int
) -> Iterator[TPTuple]:
    """Output tuples a completed *forward* group (positive = left) yields."""
    wanted = _FORWARD_CLASSES[kind]
    for window in iter_lawan([group]):
        if window.window_class not in wanted:
            continue
        if kind == "anti":
            yield window_to_positive_tuple(window)
        else:
            yield window_to_tuple(window, left_width, right_width, left_is_positive=True)


def reverse_group_tuples(
    kind: str, group: OverlapGroup, left_width: int, right_width: int
) -> Iterator[TPTuple]:
    """Output tuples a completed *reverse* group (positive = right) yields.

    Only the unmatched and negating windows of ``s`` w.r.t. ``r``: the
    overlapping windows are shared with the forward direction (``WO(r;s,θ) =
    WO(s;r,θ)``) and are emitted from there, with the batch joins' operand
    order.
    """
    if kind not in REVERSE_KINDS:
        return
    for window in iter_lawan([group]):
        if window.window_class is WindowClass.OVERLAPPING:
            continue
        yield window_to_tuple(window, left_width, right_width, left_is_positive=False)


def group_of(entry: OpenPositive) -> OverlapGroup:
    """The (possibly still open) overlap group of one maintainer entry.

    Matches are sorted into sweep order on a copy — the entry keeps arrival
    order so later additions stay cheap.
    """
    from .incremental import _match_order

    return OverlapGroup(entry.tuple, sorted(entry.matches, key=_match_order))


class ContinuousJoinBase:
    """Shared machinery of the continuous TP joins.

    Subclasses set ``kind``; kinds in :data:`REVERSE_KINDS` additionally run
    the mirrored reverse maintainer.
    """

    kind: str = ""

    def __init__(
        self,
        left_schema: Schema,
        right_schema: Schema,
        theta: ThetaCondition,
        left_name: str = "r",
        right_name: str = "s",
        clock: Callable[[], float] = time.perf_counter,
        events: Optional[EventSpace] = None,
        materialize_probabilities: bool = False,
        layout: str = "object",
    ) -> None:
        if materialize_probabilities and events is None:
            raise ValueError("materialize_probabilities requires an event space")
        self._left_schema = left_schema
        self._right_schema = right_schema
        self._theta = theta
        self._left_name = left_name
        self._right_name = right_name
        self._clock = clock
        self._events = events
        self._materialize = materialize_probabilities
        self._layout = layout
        maintainer_cls = maintainer_class(layout)
        self._maintainer = maintainer_cls(theta, events=events)
        self._reverse: Optional[IncrementalWindowMaintainer] = (
            maintainer_cls(swap_theta(theta), events=events)
            if self.kind in REVERSE_KINDS
            else None
        )
        self.stats = OperatorStats()
        #: Per finalized positive tuple: seconds from ingestion to emission.
        self.emit_latencies: List[float] = []

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def theta(self) -> ThetaCondition:
        return self._theta

    @property
    def maintainer(self) -> IncrementalWindowMaintainer:
        """The forward incremental window state (exposed for monitoring)."""
        return self._maintainer

    @property
    def reverse_maintainer(self) -> Optional[IncrementalWindowMaintainer]:
        """The mirrored maintainer of right/full outer joins (else ``None``)."""
        return self._reverse

    @property
    def materializes_probabilities(self) -> bool:
        return self._materialize

    @property
    def layout(self) -> str:
        """The window-maintainer state layout this operator runs on."""
        return self._layout

    def output_schema(self) -> Schema:
        if self.kind == "anti":
            return self._left_schema
        return joined_output_schema(
            self._left_schema, self._right_schema, self._right_name
        )

    _SYMBOLS = {
        "anti": "▷",
        "left_outer": "⟕",
        "right_outer": "⟖",
        "full_outer": "⟗",
        "inner": "⋈",
    }

    def describe(self) -> str:
        symbol = self._SYMBOLS[self.kind]
        return (
            f"{type(self).__name__}[{self._left_name} {symbol} {self._right_name}] "
            f"on {self._theta.describe()}"
        )

    # ------------------------------------------------------------------ #
    # element processing
    # ------------------------------------------------------------------ #
    def process(self, tagged: Tagged) -> List[TPTuple]:
        """Apply one tagged element; return any newly finalized output tuples."""
        element = tagged.element
        if isinstance(element, StreamEvent):
            if tagged.side == LEFT:
                # Emit latency is measured per positive-group finalization, so
                # only sides acting as a positive pay for a clock reading; a
                # router-stamped clock wins so buffered queueing is included.
                now = (
                    tagged.ingest_clock
                    if tagged.ingest_clock is not None
                    else self._clock()
                )
                self._maintainer.add_positive(element.tuple, ingest_clock=now)
                if self._reverse is not None:
                    self._reverse.add_negative(element.tuple)
            elif tagged.side == RIGHT:
                self._maintainer.add_negative(element.tuple)
                if self._reverse is not None:
                    now = (
                        tagged.ingest_clock
                        if tagged.ingest_clock is not None
                        else self._clock()
                    )
                    self._reverse.add_positive(element.tuple, ingest_clock=now)
            else:
                raise ValueError(f"unknown stream side {tagged.side!r}")
            return []
        if isinstance(element, Watermark):
            if tagged.side == LEFT:
                finalized = self._maintainer.advance_left(element.value)
                finalized_reverse = (
                    self._reverse.advance_right(element.value) if self._reverse else []
                )
            else:
                finalized = self._maintainer.advance_right(element.value)
                finalized_reverse = (
                    self._reverse.advance_left(element.value) if self._reverse else []
                )
            return self._emit(finalized, finalized_reverse)
        raise TypeError(f"unsupported stream element {element!r}")

    def run(self, tagged_elements: Iterable[Tagged]) -> Iterator[TPTuple]:
        """Drive the operator over a merged element sequence, then close it."""
        for tagged in tagged_elements:
            yield from self.process(tagged)
        yield from self.close()

    def close(self) -> List[TPTuple]:
        """Finalize all remaining windows (both sides closed)."""
        return self._emit(
            self._maintainer.close(), self._reverse.close() if self._reverse else []
        )

    # ------------------------------------------------------------------ #
    # output formation
    # ------------------------------------------------------------------ #
    def _emit(
        self,
        finalized: Sequence[FinalizedGroup],
        finalized_reverse: Sequence[FinalizedGroup] = (),
    ) -> List[TPTuple]:
        outputs: List[TPTuple] = []
        if not finalized and not finalized_reverse:
            return outputs
        emit_clock = self._clock()
        left_width = len(self._left_schema)
        right_width = len(self._right_schema)
        for group in finalized:
            self.stats.groups_finalized += 1
            self.emit_latencies.append(max(0.0, emit_clock - group.ingest_clock))
            outputs.extend(
                self._materialized(
                    forward_group_tuples(self.kind, group.group, left_width, right_width),
                    self._maintainer,
                    group,
                )
            )
        for group in finalized_reverse:
            self.stats.groups_finalized += 1
            self.emit_latencies.append(max(0.0, emit_clock - group.ingest_clock))
            outputs.extend(
                self._materialized(
                    reverse_group_tuples(self.kind, group.group, left_width, right_width),
                    self._reverse,
                    group,
                )
            )
        self.stats.outputs_emitted += len(outputs)
        return outputs

    def _materialized(
        self,
        tuples: Iterator[TPTuple],
        maintainer: IncrementalWindowMaintainer,
        group: FinalizedGroup,
    ) -> Iterator[TPTuple]:
        if not self._materialize:
            yield from tuples
            return
        computer = maintainer.computer_for(group.key)
        if self._layout == "columnar":
            # Batch kernel: evaluate each distinct interned sub-expression of
            # the group once, scatter by intern id.  Values are produced by
            # the same per-key computer, so they are bitwise-identical to the
            # sequential path (a duplicate is exactly a memo hit).
            from ..columnar.probs import batch_probabilities

            materialized = list(tuples)
            values = batch_probabilities(
                computer, [tp_tuple.lineage for tp_tuple in materialized]
            )
            for tp_tuple, value in zip(materialized, values):
                yield replace(tp_tuple, probability=value)
            return
        for tp_tuple in tuples:
            yield replace(tp_tuple, probability=computer.probability(tp_tuple.lineage))


class ContinuousAntiJoin(ContinuousJoinBase):
    """Continuous TP anti join ``r ▷ s`` with watermark-driven finalization."""

    kind = "anti"


class ContinuousLeftOuterJoin(ContinuousJoinBase):
    """Continuous TP left outer join ``r ⟕ s`` with watermark-driven finalization."""

    kind = "left_outer"


class ContinuousInnerJoin(ContinuousJoinBase):
    """Continuous TP inner join ``r ⋈ s`` (overlapping windows only)."""

    kind = "inner"


class ContinuousRightOuterJoin(ContinuousJoinBase):
    """Continuous TP right outer join ``r ⟖ s`` (reverse windows + WO)."""

    kind = "right_outer"


class ContinuousFullOuterJoin(ContinuousJoinBase):
    """Continuous TP full outer join ``r ⟗ s`` (all five window sets)."""

    kind = "full_outer"


#: Continuous operator class per join-kind name (mirrors the batch registry).
CONTINUOUS_OPERATORS = {
    "anti": ContinuousAntiJoin,
    "left_outer": ContinuousLeftOuterJoin,
    "inner": ContinuousInnerJoin,
    "right_outer": ContinuousRightOuterJoin,
    "full_outer": ContinuousFullOuterJoin,
}


def continuous_output_schema(
    kind: str, left_schema: Schema, right_schema: Schema, right_name: str = "s"
) -> Schema:
    """The output schema of a continuous join, without building the operator.

    Mirrors the per-class ``output_schema`` definitions above so callers
    that only need the schema (e.g. :class:`repro.stream.StreamQuery`
    wrapping a finished run) skip constructing a window maintainer.
    """
    if kind not in CONTINUOUS_OPERATORS:
        raise ValueError(
            f"continuous execution supports {sorted(CONTINUOUS_OPERATORS)}, not {kind!r}"
        )
    if kind == "anti":
        return left_schema
    return joined_output_schema(left_schema, right_schema, right_name)


def continuous_join(
    kind: str,
    left_schema: Schema,
    right_schema: Schema,
    on: Sequence[tuple[str, str]] = (),
    left_name: str = "r",
    right_name: str = "s",
    events: Optional[EventSpace] = None,
    materialize_probabilities: bool = False,
    layout: str = "object",
) -> ContinuousJoinBase:
    """Instantiate a continuous join by kind name (see :data:`CONTINUOUS_OPERATORS`)."""
    try:
        operator_class = CONTINUOUS_OPERATORS[kind]
    except KeyError:
        raise ValueError(
            f"continuous execution supports {sorted(CONTINUOUS_OPERATORS)}, not {kind!r}"
        ) from None
    theta = theta_from_pairs(left_schema, right_schema, on)
    return operator_class(
        left_schema,
        right_schema,
        theta,
        left_name=left_name,
        right_name=right_name,
        events=events,
        materialize_probabilities=materialize_probabilities,
        layout=layout,
    )
