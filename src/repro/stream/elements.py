"""Stream elements: events, watermarks and tagged union helpers.

A continuous TP stream is an unbounded sequence of *elements*.  Two kinds of
element flow through the subsystem:

* :class:`StreamEvent` — one TP tuple becoming known to the system.  The
  tuple's validity interval lives in *event time* (the paper's time domain);
  the event additionally records the *arrival sequence number* assigned at
  ingestion, which is what makes out-of-order delivery observable.
* :class:`Watermark` — a promise by the emitting source that every event it
  will deliver from now on has an interval **starting at or after**
  ``value``.  Watermarks are what allow the incremental window maintainer to
  *finalize* output: once the combined watermark of a join has passed the end
  of a positive tuple's interval, no future event of either stream can create
  or change any of that tuple's windows.

The special value :data:`CLOSED` (+inf) closes a stream: it finalizes every
remaining window and is emitted automatically when a finite replay source is
exhausted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from ..relation import TPTuple

#: Watermark value that closes a stream (no further events, ever).
CLOSED: float = math.inf


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One TP tuple arriving on a stream.

    Attributes:
        tuple: the TP tuple; its interval is the event-time extent.
        sequence: arrival sequence number assigned by the ingesting source
            (0-based, monotonically increasing per source).
    """

    tuple: TPTuple
    sequence: int = 0

    @property
    def event_start(self) -> int:
        """Event-time start of the carried tuple (watermarks compare to this)."""
        return self.tuple.start


@dataclass(frozen=True, slots=True)
class Watermark:
    """A source's promise: no future event has ``tuple.start < value``."""

    value: float

    @property
    def closes(self) -> bool:
        """Whether this watermark closes the stream."""
        return self.value == CLOSED


#: Anything a stream source yields.
StreamElement = Union[StreamEvent, Watermark]

#: Side tags used when two streams are merged into one element sequence.
LEFT = "left"
RIGHT = "right"


@dataclass(frozen=True, slots=True)
class Tagged:
    """A stream element labelled with the join side it belongs to.

    ``ingest_clock`` is an optional wall-clock reading stamped where the
    element entered the system (the parallel router stamps it before the
    element can sit in a worker's buffer), so emit-latency measurements
    include queueing time.  ``None`` means "stamp at processing time" —
    correct for inline execution, where the two coincide.

    ``trace`` is an optional ``(trace_id, parent_span_id)`` pair: the
    compact trace context a sampled element carries from the source
    through worker dispatch, channel hops and the wire codecs (see
    :mod:`repro.obs.trace`).  ``None`` — the overwhelmingly common case —
    means the element is unsampled and every tracing branch is skipped.
    """

    side: str
    element: StreamElement
    ingest_clock: Optional[float] = None
    trace: Optional[tuple] = None


def tag(side: str, elements: Iterable[StreamElement]) -> Iterator[Tagged]:
    """Label every element of one stream with its join side."""
    for element in elements:
        yield Tagged(side, element)
