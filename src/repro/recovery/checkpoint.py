"""Checkpoint codec: snapshot and restore one stream-shard worker's state.

A checkpoint captures everything a replacement worker needs to continue a
continuous-join shard from a micro-batch boundary instead of from element
zero: the collected settled outputs, the per-side channel-watermark merges,
the operator's emit latencies and counters, and — the bulk — the forward
(and, for right/full outer joins, the mirrored reverse)
:class:`~repro.stream.incremental.IncrementalWindowMaintainer`: open
positives with their accrued overlap records, indexed negatives, watermark
horizons, serial counter, stats, and the per-key probability computers'
memoised ``(lineage, probability)`` caches.

Payloads are nested tuples of primitives built on the compact codecs of
:mod:`repro.parallel.serialize` (``encode_tuple`` / ``encode_lineage`` and
inverses), so a checkpoint frame rides the socket transport's pickle framing
at the same cost profile as the shard inputs themselves — no class metadata
per node.  The codec is a bijection on the state it covers: restoring a
snapshot and replaying the post-checkpoint input suffix yields settled
output tuple-for-tuple, bitwise-probability equal to an unfailed run,
because

* floats (watermarks, intervals, cached probabilities) round-trip exactly
  through pickle;
* cached probabilities are re-seeded *as values* — the replacement computer
  answers repeated lineages from the seeded memo exactly as the original
  would have from its own; and
* lineage expressions re-intern structurally, landing in an equivalent
  hash-cons state.

Only output-collecting shard workers (``spec.collect_outputs``) are
checkpointable: dataflow node workers have peer edges whose in-flight
elements a single-worker snapshot cannot capture, so graph recovery is out
of scope (see :mod:`repro.recovery`).

The codec is *layout-independent*: maintainer state is read and written
through the four accessor methods (``open_items`` / ``negative_items`` /
``load_open_entries`` / ``load_negatives``) both maintainer implementations
provide, never through the storage layout.  A snapshot taken under the
columnar layout (:mod:`repro.columnar`) therefore restores into an object
worker and vice versa, through the same ``CHECKPOINT_VERSION`` frames.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.overlap import OverlapRecord
from ..parallel.serialize import (
    decode_lineage,
    decode_tuple,
    decode_tuples,
    encode_lineage,
    encode_tuple,
    encode_tuples,
)
from ..stream.elements import LEFT, RIGHT
from ..stream.incremental import IncrementalWindowMaintainer, OpenPositive
from ..temporal import Interval

#: Bumped whenever the payload shape changes; restore rejects mismatches
#: loudly instead of mis-decoding a stale frame.
CHECKPOINT_VERSION = 1

__all__ = [
    "CHECKPOINT_VERSION",
    "checkpoint_elements",
    "encode_maintainer",
    "restore_maintainer",
    "restore_worker",
    "snapshot_worker",
]


# --------------------------------------------------------------------------- #
# maintainer codec
# --------------------------------------------------------------------------- #
def encode_maintainer(maintainer: IncrementalWindowMaintainer) -> tuple:
    """Flatten one incremental window maintainer into primitives.

    Partition keys travel verbatim (they are tuples of fact values, already
    pickle-clean on the tuple path); each overlap record ships only the
    negative tuple and the overlap interval — the positive side is the open
    entry's own tuple and is rebound on decode.
    """
    stats = maintainer.stats
    open_code = []
    for key, entries in maintainer.open_items():
        entry_codes = []
        for entry in entries:
            entry_codes.append(
                (
                    encode_tuple(entry.tuple),
                    entry.ingest_clock,
                    entry.serial,
                    [
                        (encode_tuple(record.s), record.interval.start, record.interval.end)
                        for record in entry.matches
                    ],
                )
            )
        open_code.append((key, entry_codes))
    negative_code = [
        (key, encode_tuples(bucket)) for key, bucket in maintainer.negative_items()
    ]
    computer_code = [
        (
            key,
            [
                (encode_lineage(expr), value)
                for expr, value in computer.cache_entries()
            ],
        )
        for key, computer in maintainer._computers.items()
    ]
    return (
        maintainer._watermark_left,
        maintainer._watermark_right,
        maintainer._finalized_through,
        maintainer._min_open_end,
        maintainer._min_negative_end,
        maintainer._serial,
        (
            stats.positives_in,
            stats.negatives_in,
            stats.late_positives_dropped,
            stats.late_negatives_dropped,
            stats.groups_finalized,
            stats.negatives_evicted,
            stats.peak_open_positives,
            stats.peak_indexed_negatives,
            stats.positives_retracted,
            stats.negatives_retracted,
        ),
        open_code,
        negative_code,
        computer_code,
    )


def restore_maintainer(maintainer: IncrementalWindowMaintainer, code: tuple) -> None:
    """Load an :func:`encode_maintainer` payload into a fresh maintainer.

    The maintainer must come straight out of the spec's operator
    constructor (same θ, same event space) with no elements ingested.
    """
    (
        watermark_left,
        watermark_right,
        finalized_through,
        min_open_end,
        min_negative_end,
        serial,
        stats_code,
        open_code,
        negative_code,
        computer_code,
    ) = code
    maintainer._watermark_left = watermark_left
    maintainer._watermark_right = watermark_right
    maintainer._finalized_through = finalized_through
    maintainer._min_open_end = min_open_end
    maintainer._min_negative_end = min_negative_end
    maintainer._serial = serial
    stats = maintainer.stats
    (
        stats.positives_in,
        stats.negatives_in,
        stats.late_positives_dropped,
        stats.late_negatives_dropped,
        stats.groups_finalized,
        stats.negatives_evicted,
        stats.peak_open_positives,
        stats.peak_indexed_negatives,
        stats.positives_retracted,
        stats.negatives_retracted,
    ) = stats_code
    for key, entry_codes in open_code:
        entries: List[OpenPositive] = []
        for tuple_code, ingest_clock, entry_serial, match_codes in entry_codes:
            positive = decode_tuple(tuple_code)
            entry = OpenPositive(
                positive, ingest_clock=ingest_clock, key=key, serial=entry_serial
            )
            for s_code, overlap_start, overlap_end in match_codes:
                entry.matches.append(
                    OverlapRecord(
                        positive,
                        decode_tuple(s_code),
                        Interval(overlap_start, overlap_end),
                    )
                )
            entries.append(entry)
        maintainer.load_open_entries(key, entries)
    for key, bucket_code in negative_code:
        maintainer.load_negatives(key, decode_tuples(bucket_code))
    for key, pairs in computer_code:
        computer = maintainer.computer_for(key)
        computer.seed_cache(
            (decode_lineage(expr_code), value) for expr_code, value in pairs
        )


# --------------------------------------------------------------------------- #
# worker snapshot / restore
# --------------------------------------------------------------------------- #
def _encode_trackers(worker) -> tuple:
    side_codes = []
    for side in (LEFT, RIGHT):
        tracker = worker._trackers[side]
        side_codes.append((list(tracker._values.items()), tracker._merged))
    return tuple(side_codes)


def _restore_trackers(worker, code: tuple) -> None:
    for side, (items, merged) in zip((LEFT, RIGHT), code):
        tracker = worker._trackers[side]
        for channel, value in items:
            tracker._values[channel] = value
        tracker._merged = merged


def snapshot_worker(worker, elements_seen: int) -> tuple:
    """Capture one stream-shard worker's full state at a batch boundary.

    ``elements_seen`` is the count of delivered elements (events *and*
    watermarks, in per-seat send order) the worker has consumed; recovery
    replays exactly the input suffix after it.
    """
    join = worker.join
    if worker._outputs is None:
        raise ValueError(
            "only output-collecting stream shards are checkpointable; "
            "dataflow node workers have peer edges a single-worker "
            "snapshot cannot capture"
        )
    reverse = join.reverse_maintainer
    return (
        CHECKPOINT_VERSION,
        elements_seen,
        encode_tuples(worker._outputs),
        list(join.emit_latencies),
        (join.stats.outputs_emitted, join.stats.groups_finalized),
        _encode_trackers(worker),
        encode_maintainer(join.maintainer),
        encode_maintainer(reverse) if reverse is not None else None,
    )


def checkpoint_elements(payload: Optional[tuple]) -> int:
    """The delivered-element count a checkpoint covers (0 for ``None``)."""
    if payload is None:
        return 0
    return payload[1]


def restore_worker(worker, payload: tuple) -> int:
    """Load a :func:`snapshot_worker` payload into a fresh worker.

    Must run before the worker consumes any element.  Returns the
    ``elements_seen`` count the driver's replay skips past.
    """
    (
        version,
        elements_seen,
        outputs_code,
        emit_latencies,
        (outputs_emitted, groups_finalized),
        tracker_code,
        forward_code,
        reverse_code,
    ) = payload
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {version} does not match "
            f"CHECKPOINT_VERSION {CHECKPOINT_VERSION}"
        )
    join = worker.join
    if worker._outputs is None:
        raise ValueError("cannot restore a checkpoint into a non-collecting worker")
    worker._outputs[:] = decode_tuples(outputs_code)
    join.emit_latencies[:] = emit_latencies
    join.stats.outputs_emitted = outputs_emitted
    join.stats.groups_finalized = groups_finalized
    _restore_trackers(worker, tracker_code)
    restore_maintainer(join.maintainer, forward_code)
    if reverse_code is not None:
        if join.reverse_maintainer is None:
            raise ValueError("checkpoint has reverse-maintainer state but the join has none")
        restore_maintainer(join.reverse_maintainer, reverse_code)
    return elements_seen
