"""Recovery vocabulary shared by the driver, results and observability.

Kept dependency-free: :mod:`repro.stream.query` re-exports
:class:`RecoveryEvent` on its results, so this module must not import
anything that imports the stream package back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RecoveryEvent", "SeatFailure"]


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovered seat: who died, why, and what the recovery replayed.

    ``checkpoint_elements`` is the element count the restored checkpoint
    covered (0 when the seat had shipped no checkpoint and the shard was
    replayed from zero); ``elements_replayed`` is the post-checkpoint
    suffix the driver re-sent to the replacement seat.
    """

    seat: int
    cause: str
    address: Optional[str]
    checkpoint_elements: int
    elements_replayed: int
    recovery_seconds: float

    def describe(self) -> str:
        where = self.address or "local-spawn"
        mode = (
            f"checkpoint@{self.checkpoint_elements}"
            if self.checkpoint_elements
            else "from-zero"
        )
        return (
            f"seat {self.seat} ({where}) {self.cause}: restored {mode}, "
            f"replayed {self.elements_replayed} element(s) "
            f"in {self.recovery_seconds:.3f}s"
        )


class SeatFailure(RuntimeError):
    """A socket seat died or timed out before delivering its result frame.

    Carries enough context for the recovery driver to act on (which seat,
    where it lived, why it is considered dead) and for the un-recovered
    error path to report precisely (the flight-recorder dump rides in the
    message, the placement address in :attr:`address`).
    """

    def __init__(self, seat: int, address: Optional[str], cause: str, message: str):
        super().__init__(message)
        self.seat = seat
        self.address = address
        self.cause = cause
