"""Kill-workers-mid-run failure injection for the recovering socket router.

The chaos tests and ``benchmarks/bench_recovery.py`` share one injector:
a plan of ``(after_events, seat)`` pairs, executed against the live
:class:`~repro.recovery.driver.RecoveringStreamRouter` as the driver
routes elements.  When the routed-event count reaches ``after_events``,
the local worker process currently hosting ``seat`` is SIGKILLed — no
shutdown handler runs, the TCP connection drops, and the driver's next
send or the seat's result wait surfaces a
:class:`~repro.recovery.types.SeatFailure` the recovery machinery must
absorb.

Plans are deterministic data, so a hypothesis-seeded test can derive one
from a random seed and shrink on it.  :func:`random_kill_plan` is the
shared recipe: kill ``kills`` distinct seats (never all of them at once —
at least one seat stays alive so the run keeps making progress) at
strictly increasing event counts.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Sequence, Tuple

__all__ = ["ChaosInjector", "random_kill_plan"]


class ChaosInjector:
    """Execute a ``(after_events, seat)`` kill plan against a live run.

    The recovering router attaches itself (:meth:`attach`) before routing
    and calls :meth:`on_event` with the running event count after every
    routed event.  Kills whose seat currently has no local process (a
    remote placement seat, or a seat already torn down) are recorded as
    misses rather than errors, so a plan stays valid across placements.

    ``wait_for_checkpoint`` holds each due kill (up to ``wait_timeout``
    seconds) until the driver has received at least one checkpoint frame
    from the victim seat.  Without it, a kill landing while the worker is
    still behind on its first micro-batch legitimately recovers from zero
    — correct, but not the scenario a checkpointed-recovery measurement
    wants to exercise.
    """

    def __init__(
        self,
        plan: Sequence[Tuple[int, int]],
        wait_for_checkpoint: bool = False,
        wait_timeout: float = 10.0,
    ) -> None:
        #: Pending kills, soonest first.
        self._plan: List[Tuple[int, int]] = sorted(plan)
        self._router = None
        self._wait_for_checkpoint = wait_for_checkpoint
        self._wait_timeout = wait_timeout
        #: ``(after_events, seat, signalled)`` for every executed entry.
        self.executed: List[Tuple[int, int, bool]] = []

    def attach(self, router) -> None:
        """Bind to the run's router (called by the recovering driver)."""
        self._router = router

    def on_event(self, events_routed: int) -> None:
        """Fire every plan entry now due (called once per routed event)."""
        while self._plan and self._plan[0][0] <= events_routed:
            after_events, seat = self._plan.pop(0)
            signalled = False
            if self._router is not None:
                if self._wait_for_checkpoint:
                    self._await_checkpoint(seat)
                signalled = self._router.kill_seat(seat)
            self.executed.append((after_events, seat, signalled))

    def _await_checkpoint(self, seat: int) -> None:
        """Block (bounded) until the driver holds a checkpoint for ``seat``."""
        deadline = time.monotonic() + self._wait_timeout
        while (
            self._router.latest_checkpoint(seat) is None
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)

    @property
    def kills_signalled(self) -> int:
        """How many plan entries actually killed a process."""
        return sum(1 for _after, _seat, signalled in self.executed if signalled)


def random_kill_plan(
    seed: int,
    seats: int,
    events_total: int,
    kills: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """A deterministic kill plan: ``kills`` seats die at random points.

    Victim seats are distinct and drawn from ``range(seats)``; at most
    ``seats - 1`` are killed so at least one seat is never touched.  Kill
    points are strictly increasing events counts within the run (never 0,
    so every seat has accepted input before the first death — the
    interesting regime for checkpoints).
    """
    if seats < 2:
        raise ValueError("a kill plan needs at least two seats")
    rng = random.Random(seed)
    if kills is None:
        kills = rng.randint(1, seats - 1)
    kills = max(1, min(kills, seats - 1))
    victims = rng.sample(range(seats), kills)
    span = max(2, events_total)
    points = sorted(rng.sample(range(1, span), min(kills, span - 1)))
    while len(points) < kills:  # tiny runs: reuse the last point + 1
        points.append(points[-1] + 1)
    return list(zip(points, victims))
