"""The recovering stream router: socket shards that survive seat loss.

A drop-in sibling of :func:`repro.stream.query.run_stream_shards`,
activated by :attr:`repro.options.ExecutionOptions.recovery_enabled`
(``restart_limit > 0`` on the socket transport).  The routing loop is the
same — hash-route events, broadcast watermarks — with three additions:

* every element is appended to a per-seat **replay buffer** at send time,
  so the driver can re-send any seat's input suffix verbatim;
* a :class:`~repro.recovery.types.SeatFailure` (send broke, connection
  EOF without a result, result-frame timeout, marshalled worker error)
  triggers **re-execution**: the failed shard's picklable spec is
  dispatched to a fresh seat — a spare placement address when the
  :class:`~repro.runtime.placement.Placement` has one left, a fresh local
  spawn otherwise — as a single-spec :class:`~repro.runtime.sockets.
  SocketSession`, restored from the seat's **latest checkpoint** frame,
  and only the post-checkpoint buffer suffix is replayed;
* the dead seat's result is abandoned and the replacement's report is
  spliced in by seat index — **at-most-once**, because the checkpoint
  carries the restored outputs and replayed elements re-derive exactly
  the windows the checkpoint had not yet finalized.  Settled output stays
  tuple-for-tuple, bitwise-probability equal to an unfailed run.

Stream shards are shared-nothing (no worker→worker edges), which is what
makes single-seat re-execution sound; dataflow graphs have peer edges
whose in-flight elements a per-seat snapshot cannot capture, so graph
runs do not use this router (``DataflowResult.recoveries()`` is always
empty).

Each recovery increments the driver-side ``recovery`` metrics registry
and records one ``recovery`` span, both merged into the run's collectors
alongside the worker telemetry.
"""

from __future__ import annotations

import logging
import os
import signal
import time
from dataclasses import replace
from typing import Iterable, List, Optional, Sequence

from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer, TraceSampler, span_detail
from ..relation import stable_key_hash
from ..runtime import RuntimeJob, WorkerReport
from ..runtime.placement import Placement
from ..runtime.sockets import SocketSession
from ..runtime.worker import SOURCE_CHANNEL
from ..stream.elements import LEFT, StreamEvent, Tagged, Watermark
from .checkpoint import checkpoint_elements
from .types import RecoveryEvent, SeatFailure

_LOGGER = logging.getLogger(__name__)

__all__ = ["RecoveringStreamRouter", "run_recovering_stream_shards"]


class RecoveringStreamRouter:
    """Per-seat send/recover state of one recovering socket run.

    Seats start on one multi-spec :class:`SocketSession`; each recovery
    moves a seat onto its own single-spec replacement session.  The
    router tracks, per seat, the session currently owning it, the replay
    buffer, whether its done sentinel was sent, and how many
    re-executions it has consumed against ``options.restart_limit``.
    """

    def __init__(self, specs: Sequence, options, job: RuntimeJob) -> None:
        self._specs = tuple(specs)
        self._options = options
        self._job = job
        count = len(self._specs)
        session = SocketSession(job, options.placement)
        #: Every session ever started, newest last — released together.
        self.sessions: List[SocketSession] = [session]
        self._seat_session: List[SocketSession] = [session] * count
        self._seat_target: List[int] = list(range(count))
        self._buffers: List[List[tuple]] = [[] for _ in range(count)]
        self._done_sent = [False] * count
        self._attempts = [0] * count
        # Spare placement addresses (indices beyond the spec count) are
        # consumed left to right by successive recoveries.
        self._spare_cursor = count
        self.recoveries: List[RecoveryEvent] = []
        #: Driver-side recovery telemetry, merged into the run's metrics.
        self.registry = MetricsRegistry(worker="driver", component="recovery")
        self.tracer = Tracer("recovery")

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    @property
    def seat_count(self) -> int:
        return len(self._specs)

    def route_event(self, seat: int, tagged: Tagged) -> None:
        """Send one key-routed event to its seat (recovering on failure)."""
        self._buffers[seat].append((None, tagged))
        self._deliver(seat, None, tagged)

    def route_watermark(self, tagged: Tagged) -> None:
        """Broadcast one watermark to every seat (recovering on failure)."""
        for seat in range(len(self._specs)):
            self._buffers[seat].append((SOURCE_CHANNEL, tagged))
            self._deliver(seat, SOURCE_CHANNEL, tagged)

    def done(self, seat: int) -> None:
        """Send one seat's done sentinel (recovering on failure)."""
        self._done_sent[seat] = True
        try:
            self._seat_session[seat].done(self._seat_target[seat])
        except SeatFailure as failure:
            self._recover(seat, failure)

    def finish_seat(self, seat: int) -> WorkerReport:
        """One seat's settled report, re-executing it as often as allowed."""
        while True:
            try:
                return self._seat_session[seat].finish_seat(self._seat_target[seat])
            except SeatFailure as failure:
                self._recover(seat, failure)

    def _deliver(self, seat: int, channel, tagged: Tagged) -> None:
        try:
            self._seat_session[seat].send(self._seat_target[seat], channel, tagged)
        except SeatFailure as failure:
            self._recover(seat, failure)

    # ------------------------------------------------------------------ #
    # chaos seam
    # ------------------------------------------------------------------ #
    def latest_checkpoint(self, seat: int):
        """The last checkpoint payload the driver holds for ``seat``
        (``None`` when the seat never checkpointed or checkpointing is
        off).  A kill landing before this is non-``None`` recovers from
        zero — see ``ChaosInjector(wait_for_checkpoint=True)``."""
        return self._seat_session[seat].latest_checkpoint(self._seat_target[seat])

    def kill_seat(self, seat: int, signum: int = signal.SIGKILL) -> bool:
        """SIGKILL the local process currently hosting ``seat`` (chaos).

        Returns whether a process was actually signalled — remote
        placement seats have no local process to kill.
        """
        session = self._seat_session[seat]
        process = session.seat_processes.get(self._seat_target[seat])
        if process is None or process.pid is None or not process.is_alive():
            return False
        os.kill(process.pid, signum)
        return True

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def _recover(self, seat: int, failure: SeatFailure) -> None:
        """Re-execute one failed seat until it accepts its input suffix.

        Each attempt (including a replacement that itself dies mid-replay)
        counts against ``restart_limit``; exhausting it re-raises the
        last :class:`SeatFailure` with every earlier cause in its chain.
        """
        spec = self._specs[seat]
        while True:
            self._attempts[seat] += 1
            self.registry.counter("seat_failures").inc()
            if self._attempts[seat] > self._options.restart_limit:
                raise failure
            started = time.perf_counter()
            failed_session = self._seat_session[seat]
            checkpoint = failed_session.latest_checkpoint(self._seat_target[seat])
            skip = checkpoint_elements(checkpoint)
            suffix = self._buffers[seat][skip:]
            _LOGGER.warning(
                "seat %d (%s) %s: re-executing from %s, replaying %d element(s)",
                seat,
                failure.address or "local-spawn",
                failure.cause,
                f"checkpoint@{skip}" if skip else "zero",
                len(suffix),
            )
            session = self._start_replacement(spec, checkpoint)
            self._seat_session[seat] = session
            self._seat_target[seat] = 0
            try:
                for channel, tagged in suffix:
                    session.send(0, channel, tagged)
                if self._done_sent[seat]:
                    session.done(0)
            except SeatFailure as next_failure:
                # The replacement died during replay: loop with its own
                # latest checkpoint (it may have checkpointed mid-replay).
                next_failure.__cause__ = failure
                failure = next_failure
                continue
            elapsed = time.perf_counter() - started
            event = RecoveryEvent(
                seat=seat,
                cause=failure.cause,
                address=failure.address,
                checkpoint_elements=skip,
                elements_replayed=len(suffix),
                recovery_seconds=elapsed,
            )
            self.recoveries.append(event)
            self.registry.counter("recoveries").inc()
            self.registry.counter("elements_replayed").inc(len(suffix))
            self.registry.gauge("last_checkpoint_elements").set(skip)
            self.tracer.record(
                "recovery",
                0,
                None,
                started,
                started + elapsed,
                seat=seat,
                cause=failure.cause,
                checkpoint_elements=skip,
                elements_replayed=len(suffix),
            )
            _LOGGER.info("recovered: %s", event.describe())
            return

    def _start_replacement(self, spec, checkpoint) -> SocketSession:
        """One fresh single-spec session for a re-executed shard."""
        address: Optional[str] = None
        placement = self._options.placement
        if placement is not None:
            while self._spare_cursor < len(placement.addresses):
                candidate = placement.addresses[self._spare_cursor]
                self._spare_cursor += 1
                if candidate:
                    address = candidate
                    break
        sub_job = replace(self._job, specs=(spec,))
        sub_placement = Placement((address,)) if address is not None else None
        restores = {0: checkpoint} if checkpoint is not None else None
        try:
            session = SocketSession(sub_job, sub_placement, restores=restores)
        except Exception as error:
            # Mid-run there is no safe transport fallback (the merged input
            # iterator is partially consumed), so a replacement that cannot
            # start is fatal — never a WorkerStartError the query layer
            # would degrade on.
            raise RuntimeError(
                f"cannot start replacement seat for shard {spec.index}: {error}"
            ) from error
        self.sessions.append(session)
        return session

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def metrics(self) -> List[dict]:
        """Live per-worker snapshots across every session (collector API)."""
        snapshots: List[dict] = []
        for session in self.sessions:
            snapshots.extend(session.metrics())
        return snapshots

    def trace_spans(self) -> List[dict]:
        """Live spans across every session (collector API)."""
        spans: List[dict] = []
        for session in self.sessions:
            spans.extend(session.trace_spans())
        return spans

    @property
    def backpressure_blocks(self) -> int:
        return sum(session.backpressure_blocks for session in self.sessions)

    def release(self) -> None:
        for session in self.sessions:
            session.release()


def run_recovering_stream_shards(
    specs: Sequence,
    merged: Iterable[Tagged],
    theta,
    stamp_right: bool,
    *,
    options,
    collector: Optional[object] = None,
    trace_collector: Optional[object] = None,
    chaos: Optional[object] = None,
) -> tuple[List[WorkerReport], int, int, str, List[RecoveryEvent]]:
    """Route a merged element sequence through recovering socket shards.

    The fault-tolerant sibling of
    :func:`repro.stream.query.run_stream_shards` (same routing rules, same
    determinism), returning one extra element: the ordered list of
    :class:`RecoveryEvent` for every seat re-execution the run survived.

    ``chaos`` is an optional failure injector (see
    :class:`repro.recovery.chaos.ChaosInjector`): it is attached to the
    router and notified once per routed event, and may kill seats through
    :meth:`RecoveringStreamRouter.kill_seat`.
    """
    partitions = len(specs)
    job = RuntimeJob(
        tuple(specs),
        options.micro_batch_size,
        options.buffer_capacity,
        metrics=options.metrics or collector is not None,
        metrics_interval=options.metrics_interval,
        trace=options.trace or trace_collector is not None,
        result_timeout=options.seat_timeout,
        checkpoint_interval=options.checkpoint_interval,
    )
    sampler = None
    driver_tracer = None
    if job.trace:
        sampler = TraceSampler(options.trace_sample_rate)
        driver_tracer = Tracer("driver")
    router = RecoveringStreamRouter(specs, options, job)
    if collector is not None:
        collector.attach(router)
    if trace_collector is not None:
        trace_collector.attach(router)
    if chaos is not None:
        chaos.attach(router)
    events_processed = 0
    try:
        for tagged in merged:
            element = tagged.element
            if isinstance(element, StreamEvent):
                events_processed += 1
                # Right/full outer joins treat right events as positives
                # too (mirrored maintainer), so both sides get an
                # ingestion stamp for emit latency.
                if tagged.side == LEFT or stamp_right:
                    tagged = Tagged(tagged.side, element, time.perf_counter())
                if sampler is not None:
                    trace_id = sampler.sample()
                    if trace_id is not None:
                        now = time.perf_counter()
                        root = driver_tracer.record(
                            "source",
                            trace_id,
                            None,
                            now,
                            now,
                            side=tagged.side,
                            **span_detail(element),
                        )
                        tagged = Tagged(
                            tagged.side, element, tagged.ingest_clock, (trace_id, root)
                        )
                if partitions > 1:
                    key = (
                        theta.left_key(element.tuple)
                        if tagged.side == LEFT
                        else theta.right_key(element.tuple)
                    )
                    seat = stable_key_hash(key) % partitions
                else:
                    seat = 0
                router.route_event(seat, tagged)
                if chaos is not None:
                    chaos.on_event(events_processed)
            elif isinstance(element, Watermark):
                router.route_watermark(tagged)
        for seat in range(partitions):
            router.done(seat)
        reports = [router.finish_seat(seat) for seat in range(partitions)]
        blocks = router.backpressure_blocks
    finally:
        router.release()
    if collector is not None:
        snapshots = [
            report.metrics for report in reports if report.metrics is not None
        ]
        if router.recoveries:
            snapshots.append(router.registry.snapshot())
        collector.complete(snapshots)
    if trace_collector is not None:
        span_lists = [report.spans for report in reports if report.spans]
        if driver_tracer is not None:
            span_lists.append(driver_tracer.dump())
        if router.recoveries:
            span_lists.append(router.tracer.dump())
        trace_collector.complete(span_lists)
    return reports, events_processed, blocks, "sockets", router.recoveries
