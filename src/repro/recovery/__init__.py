"""Fault-tolerant distributed execution: checkpointed shard re-execution.

The socket transport makes worker *loss* an expected event.  This package
turns a dead seat from a run-killing error into a recovered one:

* :mod:`repro.recovery.checkpoint` — snapshot/restore of a stream-shard
  worker's full state (open windows, reverse maintainer, hash-cons
  probability caches, collected outputs) through the compact codecs of
  :mod:`repro.parallel.serialize`;
* :mod:`repro.recovery.driver` — the recovering stream router: detects a
  dead or timed-out seat, re-dispatches its self-contained spec to a
  fresh placement seat restored from the latest checkpoint, replays only
  the post-checkpoint element suffix, and splices the replacement's
  report in at-most-once — settled output stays tuple-for-tuple,
  bitwise-probability equal to an unfailed run;
* :mod:`repro.recovery.chaos` — the kill-workers-mid-run injector the
  chaos tests and ``benchmarks/bench_recovery.py`` share.

Only this ``__init__`` and :mod:`~repro.recovery.types` are imported
eagerly (the stream package re-exports :class:`RecoveryEvent` on its
results); the heavier modules load on first use.
"""

from .types import RecoveryEvent, SeatFailure

__all__ = ["RecoveryEvent", "SeatFailure"]
