"""Baselines: the naive per-time-point oracle and Temporal Alignment (TA)."""

from .naive import (
    naive_anti_join,
    naive_full_outer_join,
    naive_left_outer_join,
    naive_windows,
)
from .temporal_alignment import (
    AlignedFragment,
    align,
    ta_anti_join,
    ta_full_outer_join,
    ta_left_outer_join,
    ta_negating_windows,
    ta_overlapping_windows,
    ta_unmatched_windows,
    ta_wuo,
    ta_wuon,
)

__all__ = [
    "AlignedFragment",
    "align",
    "naive_anti_join",
    "naive_full_outer_join",
    "naive_left_outer_join",
    "naive_windows",
    "ta_anti_join",
    "ta_full_outer_join",
    "ta_left_outer_join",
    "ta_negating_windows",
    "ta_overlapping_windows",
    "ta_unmatched_windows",
    "ta_wuo",
    "ta_wuon",
]
