"""Naive per-time-point evaluation of TP joins with negation.

This baseline evaluates the *definition* of the generalized windows directly:
for every tuple of the positive relation it walks the tuple's interval,
computes at every step the set of valid, θ-matching tuples of the negative
relation, and glues maximal runs with a constant matching set into windows.
Overlapping windows are simply the pairwise interval intersections.

It is quadratic (or worse) and replicates work massively, so it is never used
for performance numbers at scale; its role is to be *obviously correct*.  The
test suite uses it as the ground-truth oracle against which both NJ (the
paper's approach) and TA (the competing approach) are checked, and the
harness can run it on small inputs as a sanity baseline.
"""

from __future__ import annotations

from ..core.concat import window_to_positive_tuple, window_to_tuple
from ..core.windows import Window, WindowClass, WindowSet
from ..lineage import disjunction_of
from ..relation import Schema, TPRelation, ThetaCondition
from ..temporal import partition_by_validity


def naive_windows(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    include_reverse: bool = False,
) -> WindowSet:
    """Compute every window class by direct application of the definitions."""
    overlapping: list[Window] = []
    unmatched: list[Window] = []
    negating: list[Window] = []

    for r in positive:
        matching = [
            s
            for s in negative
            if theta.evaluate(r, s) and r.interval.overlaps(s.interval)
        ]
        # Overlapping windows: one per matching pair, spanning the intersection.
        for s in matching:
            overlap = r.interval.intersect(s.interval)
            assert overlap is not None
            overlapping.append(
                Window(
                    fact_r=r.fact,
                    fact_s=s.fact,
                    interval=overlap,
                    lineage_r=r.lineage,
                    lineage_s=s.lineage,
                    window_class=WindowClass.OVERLAPPING,
                    source_interval=r.interval,
                )
            )
        # Unmatched and negating windows: partition r's interval into maximal
        # segments with a constant set of valid matching tuples.
        segments = partition_by_validity(r.interval, [s.interval for s in matching])
        for segment, active in segments:
            if not active:
                unmatched.append(
                    Window(
                        fact_r=r.fact,
                        fact_s=None,
                        interval=segment,
                        lineage_r=r.lineage,
                        lineage_s=None,
                        window_class=WindowClass.UNMATCHED,
                        source_interval=r.interval,
                    )
                )
            else:
                negating.append(
                    Window(
                        fact_r=r.fact,
                        fact_s=None,
                        interval=segment,
                        lineage_r=r.lineage,
                        lineage_s=disjunction_of(matching[i].lineage for i in active),
                        window_class=WindowClass.NEGATING,
                        source_interval=r.interval,
                    )
                )

    unmatched_s: tuple[Window, ...] = ()
    negating_s: tuple[Window, ...] = ()
    if include_reverse:
        from ..core.joins import swap_theta

        reverse = naive_windows(negative, positive, swap_theta(theta))
        unmatched_s = reverse.unmatched_r
        negating_s = reverse.negating_r
    return WindowSet(
        tuple(overlapping), tuple(unmatched), tuple(negating), unmatched_s, negating_s
    )


def _combined_schema(left: TPRelation, right: TPRelation) -> Schema:
    left_names = set(left.schema.attributes)
    right_attributes = tuple(
        f"{right.name or 's'}.{name}" if name in left_names else name
        for name in right.schema.attributes
    )
    return Schema(left.schema.attributes + right_attributes)


def naive_anti_join(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
) -> TPRelation:
    """Anti join computed from the naive windows (the correctness oracle)."""
    events = positive.events.merge(negative.events)
    merged = TPRelation(
        positive.schema, positive.tuples, events, name=positive.name, check_constraint=False
    )
    windows = naive_windows(merged, negative, theta)
    tuples = [
        window_to_positive_tuple(w) for w in (*windows.unmatched_r, *windows.negating_r)
    ]
    result = merged.derived(positive.schema, tuples, name=f"naive({positive.name} ▷ {negative.name})")
    return result.with_probabilities() if compute_probabilities else result


def naive_left_outer_join(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
) -> TPRelation:
    """Left outer join computed from the naive windows (the correctness oracle)."""
    events = positive.events.merge(negative.events)
    merged = TPRelation(
        positive.schema, positive.tuples, events, name=positive.name, check_constraint=False
    )
    windows = naive_windows(merged, negative, theta)
    schema = _combined_schema(positive, negative)
    left_width, right_width = len(positive.schema), len(negative.schema)
    tuples = [
        window_to_tuple(w, left_width, right_width, left_is_positive=True)
        for w in (*windows.unmatched_r, *windows.overlapping, *windows.negating_r)
    ]
    result = merged.derived(schema, tuples, name=f"naive({positive.name} ⟕ {negative.name})")
    return result.with_probabilities() if compute_probabilities else result


def naive_full_outer_join(
    left: TPRelation,
    right: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
) -> TPRelation:
    """Full outer join computed from the naive windows (the correctness oracle)."""
    events = left.events.merge(right.events)
    merged = TPRelation(
        left.schema, left.tuples, events, name=left.name, check_constraint=False
    )
    windows = naive_windows(merged, right, theta, include_reverse=True)
    schema = _combined_schema(left, right)
    left_width, right_width = len(left.schema), len(right.schema)
    tuples = [
        window_to_tuple(w, left_width, right_width, left_is_positive=True)
        for w in (*windows.unmatched_r, *windows.overlapping, *windows.negating_r)
    ]
    tuples.extend(
        window_to_tuple(w, left_width, right_width, left_is_positive=False)
        for w in (*windows.unmatched_s, *windows.negating_s)
    )
    result = merged.derived(schema, tuples, name=f"naive({left.name} ⟗ {right.name})")
    return result.with_probabilities() if compute_probabilities else result
