"""Temporal Alignment (TA) — the competing approach of the evaluation.

Temporal Alignment (Dignös, Böhlen, Gamper, Jensen: "Extending the Kernel of
a Relational DBMS with Comprehensive Support for Sequenced Temporal Queries",
TODS 2016) evaluates sequenced temporal operators by *aligning* the input
relations: every tuple is replicated and split at the interval boundaries of
its join partners, after which conventional (non-temporal) operators over the
aligned fragments produce the temporal result.

The paper adapts TA to temporal-probabilistic joins with negation and uses it
as the only applicable state-of-the-art baseline.  The adaptation reproduced
here follows the paper's description of TA's cost profile:

* the conventional outer join over the overlap predicate is executed **twice**
  (once for the overlapping part, once more to derive the unmatched part), so
  the WUO phase does roughly double the work of NJ (paper: "NJ only executes
  this join once whereas TA executes it twice", Fig. 5);
* the negating part requires *aligning* the positive relation against its
  matching partners — i.e. replicating each tuple into one fragment per
  elementary segment — and then joining the fragments with the negative
  relation again and grouping per fragment (Fig. 6);
* the final TP join has to union the sub-results, remove the unmatched
  windows that were computed twice, and re-check θ, and the conventional join
  inside the union-based plan degenerates to a nested loop (paper: "the
  optimizer opts for a nested loop … this takes a huge toll", Fig. 7).

TA therefore produces exactly the same windows and output tuples as NJ (the
tests assert this), but with tuple replication and redundant interval
computations — which is precisely the overhead the paper's approach removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.concat import window_to_positive_tuple, window_to_tuple
from ..core.joins import swap_theta
from ..core.overlap import overlap_join
from ..core.windows import Window, WindowClass
from ..lineage import disjunction_of
from ..relation import Schema, TPRelation, TPTuple, ThetaCondition
from ..temporal import Interval, segments_within


# --------------------------------------------------------------------------- #
# alignment (tuple replication)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class AlignedFragment:
    """One fragment of a positive tuple after alignment against its partners."""

    origin: TPTuple
    interval: Interval


def align(
    positive: TPRelation, negative: TPRelation, theta: ThetaCondition
) -> list[AlignedFragment]:
    """Replicate and split every positive tuple at its partners' boundaries.

    This is TA's *normalization* step: the output contains one fragment per
    elementary segment of each positive tuple's interval, where the segments
    are induced by the interval endpoints of the θ-matching negative tuples.
    A tuple with no matching partner yields a single fragment spanning its
    whole interval.  The replication factor of this step is what the paper's
    approach avoids.
    """
    fragments: list[AlignedFragment] = []
    for r in positive:
        partner_intervals = [
            s.interval
            for s in negative
            if theta.evaluate(r, s) and r.interval.overlaps(s.interval)
        ]
        for segment in segments_within(r.interval, partner_intervals):
            fragments.append(AlignedFragment(r, segment))
    return fragments


# --------------------------------------------------------------------------- #
# window computation, TA style
# --------------------------------------------------------------------------- #
def ta_overlapping_windows(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    nested_loop: bool = False,
) -> list[Window]:
    """The overlapping windows via the conventional outer join.

    ``nested_loop=True`` forces the pairing strategy the paper reports the
    PostgreSQL optimizer chooses for TA's union-based plans; the default uses
    the same partitioned join as NJ (the Fig. 5 setting, where both
    approaches' dominant cost is "a conventional left join").
    """
    pairing_theta = _ForceNestedLoop(theta) if nested_loop else theta
    windows: list[Window] = []
    for group in overlap_join(positive, negative, pairing_theta):
        for record in group.matches:
            windows.append(record.to_window())
    return windows


def ta_unmatched_windows(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    nested_loop: bool = False,
) -> list[Window]:
    """The unmatched windows, computed by a *second* pass over the inputs.

    TA cannot reuse the overlapping windows it already computed: it aligns
    the positive relation against the negative one (replicating tuples into
    fragments) and keeps the fragments with no valid matching partner — which
    requires evaluating the overlap predicate and θ again.
    """
    pairing_theta = _ForceNestedLoop(theta) if nested_loop else theta
    windows: list[Window] = []
    # Second execution of the conventional join, as an alignment pass.
    for group in overlap_join(positive, negative, pairing_theta):
        r = group.r
        partner_intervals = [record.interval for record in group.matches]
        for segment in segments_within(r.interval, partner_intervals):
            covered = any(
                interval.contains_interval(segment) for interval in partner_intervals
            )
            if covered:
                continue
            windows.append(
                Window(
                    fact_r=r.fact,
                    fact_s=None,
                    interval=segment,
                    lineage_r=r.lineage,
                    lineage_s=None,
                    window_class=WindowClass.UNMATCHED,
                    source_interval=r.interval,
                )
            )
    return _merge_adjacent_unmatched(windows)


def ta_wuo(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    nested_loop: bool = False,
) -> list[Window]:
    """TA's WUO set: two executions of the conventional join (Fig. 5 baseline)."""
    overlapping = ta_overlapping_windows(positive, negative, theta, nested_loop)
    unmatched = ta_unmatched_windows(positive, negative, theta, nested_loop)
    return [*unmatched, *overlapping]


def ta_negating_windows(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    nested_loop: bool = False,
) -> list[Window]:
    """The negating windows via alignment, re-join and grouping (Fig. 6 baseline).

    TA replicates every positive tuple into its aligned fragments, joins each
    fragment with the negative relation *again* to find the partners valid
    over the fragment, and groups the partners' lineages per fragment.  The
    fragments whose partner set is empty are discarded here (they are the
    unmatched windows, which TA computes — once more — separately).
    """
    pairing_theta = _ForceNestedLoop(theta) if nested_loop else theta
    fragments = align(positive, negative, pairing_theta)
    windows: list[Window] = []
    negative_sorted = sorted(negative, key=lambda t: (t.start, t.end))
    for fragment in fragments:
        r = fragment.origin
        partner_lineages = []
        for s in negative_sorted:
            if s.start >= fragment.interval.end:
                break
            if not s.interval.contains_interval(fragment.interval):
                continue
            if theta.evaluate(r, s):
                partner_lineages.append(s.lineage)
        if not partner_lineages:
            continue
        windows.append(
            Window(
                fact_r=r.fact,
                fact_s=None,
                interval=fragment.interval,
                lineage_r=r.lineage,
                lineage_s=disjunction_of(partner_lineages),
                window_class=WindowClass.NEGATING,
                source_interval=r.interval,
            )
        )
    return windows


def ta_wuon(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    nested_loop: bool = False,
) -> list[Window]:
    """TA's full window set (WUO twice-joined + aligned negating windows)."""
    return [
        *ta_wuo(positive, negative, theta, nested_loop),
        *ta_negating_windows(positive, negative, theta, nested_loop),
    ]


# --------------------------------------------------------------------------- #
# TA join operators (union-based plans with duplicate elimination)
# --------------------------------------------------------------------------- #
def ta_anti_join(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
    nested_loop: bool = True,
) -> TPRelation:
    """TP anti join evaluated the TA way (sub-results + deduplicating union)."""
    events = positive.events.merge(negative.events)
    merged = TPRelation(
        positive.schema, positive.tuples, events, name=positive.name, check_constraint=False
    )
    unmatched = ta_unmatched_windows(merged, negative, theta, nested_loop)
    # The union-based plan recomputes the unmatched windows as part of the
    # negating branch as well; the duplicates are removed by the union.
    unmatched_again = ta_unmatched_windows(merged, negative, theta, nested_loop)
    negating = ta_negating_windows(merged, negative, theta, nested_loop)
    tuples = [
        window_to_positive_tuple(w) for w in (*unmatched, *unmatched_again, *negating)
    ]
    tuples = _deduplicate(tuples)
    result = merged.derived(
        positive.schema, tuples, name=f"ta({positive.name} ▷ {negative.name})"
    )
    return result.with_probabilities() if compute_probabilities else result


def ta_left_outer_join(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
    nested_loop: bool = True,
) -> TPRelation:
    """TP left outer join evaluated the TA way (the Fig. 7 baseline).

    Three independent sub-plans (overlapping, unmatched, negating) are
    evaluated — each re-deriving the interval decomposition it needs — and a
    deduplicating union combines them, mirroring the plan the paper describes
    for TA inside PostgreSQL.
    """
    events = positive.events.merge(negative.events)
    merged = TPRelation(
        positive.schema, positive.tuples, events, name=positive.name, check_constraint=False
    )
    overlapping = ta_overlapping_windows(merged, negative, theta, nested_loop)
    unmatched = ta_unmatched_windows(merged, negative, theta, nested_loop)
    unmatched_again = ta_unmatched_windows(merged, negative, theta, nested_loop)
    negating = ta_negating_windows(merged, negative, theta, nested_loop)
    schema = _combined_schema(positive, negative)
    left_width, right_width = len(positive.schema), len(negative.schema)
    tuples = [
        window_to_tuple(w, left_width, right_width, left_is_positive=True)
        for w in (*unmatched, *unmatched_again, *overlapping, *negating)
    ]
    tuples = _deduplicate(tuples)
    result = merged.derived(schema, tuples, name=f"ta({positive.name} ⟕ {negative.name})")
    return result.with_probabilities() if compute_probabilities else result


def ta_full_outer_join(
    left: TPRelation,
    right: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
    nested_loop: bool = True,
) -> TPRelation:
    """TP full outer join evaluated the TA way (both directions + union)."""
    events = left.events.merge(right.events)
    merged_left = TPRelation(
        left.schema, left.tuples, events, name=left.name, check_constraint=False
    )
    merged_right = TPRelation(
        right.schema, right.tuples, events, name=right.name, check_constraint=False
    )
    reverse_theta = swap_theta(theta)

    overlapping = ta_overlapping_windows(merged_left, merged_right, theta, nested_loop)
    unmatched_left = ta_unmatched_windows(merged_left, merged_right, theta, nested_loop)
    negating_left = ta_negating_windows(merged_left, merged_right, theta, nested_loop)
    unmatched_right = ta_unmatched_windows(merged_right, merged_left, reverse_theta, nested_loop)
    negating_right = ta_negating_windows(merged_right, merged_left, reverse_theta, nested_loop)

    schema = _combined_schema(left, right)
    left_width, right_width = len(left.schema), len(right.schema)
    tuples = [
        window_to_tuple(w, left_width, right_width, left_is_positive=True)
        for w in (*unmatched_left, *overlapping, *negating_left)
    ]
    tuples.extend(
        window_to_tuple(w, left_width, right_width, left_is_positive=False)
        for w in (*unmatched_right, *negating_right)
    )
    tuples = _deduplicate(tuples)
    result = merged_left.derived(schema, tuples, name=f"ta({left.name} ⟗ {right.name})")
    return result.with_probabilities() if compute_probabilities else result


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
class _ForceNestedLoop(ThetaCondition):
    """Wrap a θ condition so the pairing cannot use hash partitioning.

    Reproduces the plan the paper reports PostgreSQL's optimizer picks for
    TA's union-based queries ("the optimizer opts for a nested loop").
    """

    def __init__(self, inner: ThetaCondition) -> None:
        self._inner = inner

    def evaluate(self, left: TPTuple, right: TPTuple) -> bool:
        return self._inner.evaluate(left, right)

    @property
    def is_equi(self) -> bool:
        return False

    def describe(self) -> str:
        return f"nested_loop({self._inner.describe()})"


def _combined_schema(left: TPRelation, right: TPRelation) -> Schema:
    left_names = set(left.schema.attributes)
    right_attributes = tuple(
        f"{right.name or 's'}.{name}" if name in left_names else name
        for name in right.schema.attributes
    )
    return Schema(left.schema.attributes + right_attributes)


def _merge_adjacent_unmatched(windows: list[Window]) -> list[Window]:
    """Coalesce adjacent unmatched fragments of the same origin tuple.

    Alignment splits a tuple at *every* partner boundary, so two consecutive
    fragments can both be uncovered; the unmatched-window definition requires
    maximal intervals, hence the merge.
    """
    merged: list[Window] = []
    ordered = sorted(
        windows,
        key=lambda w: (w.fact_r, str(w.lineage_r), w.interval.start, w.interval.end),
    )
    for window in ordered:
        previous = merged[-1] if merged else None
        if (
            previous is not None
            and previous.fact_r == window.fact_r
            and previous.lineage_r == window.lineage_r
            and previous.source_interval == window.source_interval
            and previous.interval.end == window.interval.start
        ):
            merged[-1] = Window(
                fact_r=previous.fact_r,
                fact_s=None,
                interval=Interval(previous.interval.start, window.interval.end),
                lineage_r=previous.lineage_r,
                lineage_s=None,
                window_class=WindowClass.UNMATCHED,
                source_interval=previous.source_interval,
            )
        else:
            merged.append(window)
    return merged


def _deduplicate(tuples: list[TPTuple]) -> list[TPTuple]:
    """The deduplicating union of TA's plan (sort + unique on the full row)."""
    seen: set[tuple] = set()
    unique: list[TPTuple] = []
    for tp_tuple in sorted(tuples, key=lambda t: t.key()):
        identity = (tp_tuple.fact, tp_tuple.interval, str(tp_tuple.lineage))
        if identity in seen:
            continue
        seen.add(identity)
        unique.append(tp_tuple)
    return unique
