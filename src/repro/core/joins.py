"""Temporal-probabilistic join operators built from generalized windows.

This module assembles the paper's TP joins with negation (Table II) from the
three window classes computed by the NJ pipeline
``overlap join → LAWAU → LAWAN``:

===================  =========  =========  =========  =========  =========
operator             WU(r;s,θ)  WN(r;s,θ)  WO(r;s,θ)  WU(s;r,θ)  WN(s;r,θ)
===================  =========  =========  =========  =========  =========
anti join  r ▷ s        ✓          ✓
left outer r ⟕ s        ✓          ✓          ✓
right outer r ⟖ s                             ✓          ✓          ✓
full outer r ⟗ s        ✓          ✓          ✓          ✓          ✓
===================  =========  =========  =========  =========  =========

Output tuples are formed per window with the class's lineage-concatenation
function; probabilities are computed from the shared event space unless the
caller opts out (benchmarks measure window computation and probability
computation separately, like the paper measures runtimes without final
materialisation cost differences).
"""

from __future__ import annotations

from ..relation import Schema, TPRelation, TPTuple, ThetaCondition
from .concat import combined_output_schema, window_to_positive_tuple, window_to_tuple
from .lawan import lawan, negating_windows
from .lawau import lawau
from .overlap import overlap_join, overlapping_windows
from .windows import Window, WindowClass, WindowSet

#: The window sets required by each TP join with negation (the paper's Table II).
WINDOW_SETS_BY_OPERATOR: dict[str, tuple[str, ...]] = {
    "anti": ("unmatched_r", "negating_r"),
    "left_outer": ("unmatched_r", "negating_r", "overlapping"),
    "right_outer": ("overlapping", "unmatched_s", "negating_s"),
    "full_outer": (
        "unmatched_r",
        "negating_r",
        "overlapping",
        "unmatched_s",
        "negating_s",
    ),
}


# --------------------------------------------------------------------------- #
# window computation
# --------------------------------------------------------------------------- #
def compute_windows(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    include_reverse: bool = False,
) -> WindowSet:
    """Compute the generalized windows of ``positive`` with respect to ``negative``.

    When ``include_reverse`` is set, the unmatched and negating windows of the
    *negative* relation with respect to the positive one are computed as well
    (they are needed by right and full outer joins; the overlapping windows
    are shared since ``WO(r;s,θ) = WO(s;r,θ)``).
    """
    groups = overlap_join(positive, negative, theta)
    windows = lawan(groups)
    overlapping = tuple(w for w in windows if w.window_class is WindowClass.OVERLAPPING)
    unmatched_r = tuple(w for w in windows if w.window_class is WindowClass.UNMATCHED)
    negating_r = tuple(w for w in windows if w.window_class is WindowClass.NEGATING)
    unmatched_s: tuple[Window, ...] = ()
    negating_s: tuple[Window, ...] = ()
    if include_reverse:
        reverse_theta = _SwappedTheta(theta)
        reverse_groups = overlap_join(negative, positive, reverse_theta)
        reverse_windows = lawan(reverse_groups)
        unmatched_s = tuple(
            w for w in reverse_windows if w.window_class is WindowClass.UNMATCHED
        )
        negating_s = tuple(
            w for w in reverse_windows if w.window_class is WindowClass.NEGATING
        )
    return WindowSet(overlapping, unmatched_r, negating_r, unmatched_s, negating_s)


class _SwappedTheta(ThetaCondition):
    """θ with the roles of the two inputs exchanged (for the reverse windows)."""

    def __init__(self, inner: ThetaCondition) -> None:
        self._inner = inner

    def evaluate(self, left: TPTuple, right: TPTuple) -> bool:
        return self._inner.evaluate(right, left)

    def left_key(self, left: TPTuple):
        return self._inner.right_key(left)

    def right_key(self, right: TPTuple):
        return self._inner.left_key(right)

    @property
    def is_equi(self) -> bool:
        return self._inner.is_equi

    def describe(self) -> str:
        return f"swapped({self._inner.describe()})"


def swap_theta(theta: ThetaCondition) -> ThetaCondition:
    """Return θ with its two sides exchanged (public helper for baselines)."""
    return _SwappedTheta(theta)


# --------------------------------------------------------------------------- #
# join operators
# --------------------------------------------------------------------------- #
def _output_schema(left: TPRelation, right: TPRelation) -> Schema:
    """Combined output schema; right-hand attributes are prefixed on clash."""
    return combined_output_schema(left.schema, right.schema, right.name or "s")


def _finalise(
    relation: TPRelation,
    tuples: list[TPTuple],
    schema: Schema,
    name: str,
    compute_probabilities: bool,
) -> TPRelation:
    result = relation.derived(schema, tuples, name=name)
    if compute_probabilities:
        return result.with_probabilities()
    return result


def tp_anti_join(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
) -> TPRelation:
    """TP anti join ``r ▷ s``: unmatched and negating windows of ``r`` w.r.t. ``s``.

    The output schema is the positive relation's schema; at every time point
    the result gives the probability that the positive tuple is true while
    *no* θ-matching negative tuple is true.
    """
    events = positive.events.merge(negative.events)
    merged = TPRelation(
        positive.schema, positive.tuples, events, name=positive.name, check_constraint=False
    )
    windows = compute_windows(merged, negative, theta)
    tuples = [
        window_to_positive_tuple(w) for w in (*windows.unmatched_r, *windows.negating_r)
    ]
    return _finalise(
        merged, tuples, positive.schema, f"{positive.name} ▷ {negative.name}", compute_probabilities
    )


def tp_left_outer_join(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
) -> TPRelation:
    """TP left outer join ``r ⟕ s`` (the paper's running example, Fig. 1b)."""
    events = positive.events.merge(negative.events)
    merged = TPRelation(
        positive.schema, positive.tuples, events, name=positive.name, check_constraint=False
    )
    windows = compute_windows(merged, negative, theta)
    schema = _output_schema(positive, negative)
    left_width, right_width = len(positive.schema), len(negative.schema)
    tuples = [
        window_to_tuple(w, left_width, right_width, left_is_positive=True)
        for w in (*windows.unmatched_r, *windows.overlapping, *windows.negating_r)
    ]
    return _finalise(
        merged, tuples, schema, f"{positive.name} ⟕ {negative.name}", compute_probabilities
    )


def tp_right_outer_join(
    left: TPRelation,
    right: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
) -> TPRelation:
    """TP right outer join ``r ⟖ s``: ``s`` is the positive relation."""
    events = left.events.merge(right.events)
    merged_left = TPRelation(
        left.schema, left.tuples, events, name=left.name, check_constraint=False
    )
    windows = compute_windows(merged_left, right, theta, include_reverse=True)
    schema = _output_schema(left, right)
    left_width, right_width = len(left.schema), len(right.schema)
    tuples = [
        window_to_tuple(w, left_width, right_width, left_is_positive=True)
        for w in windows.overlapping
    ]
    tuples.extend(
        window_to_tuple(w, left_width, right_width, left_is_positive=False)
        for w in (*windows.unmatched_s, *windows.negating_s)
    )
    return _finalise(
        merged_left, tuples, schema, f"{left.name} ⟖ {right.name}", compute_probabilities
    )


def tp_full_outer_join(
    left: TPRelation,
    right: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
) -> TPRelation:
    """TP full outer join ``r ⟗ s``: all five window sets of Table II."""
    events = left.events.merge(right.events)
    merged_left = TPRelation(
        left.schema, left.tuples, events, name=left.name, check_constraint=False
    )
    windows = compute_windows(merged_left, right, theta, include_reverse=True)
    schema = _output_schema(left, right)
    left_width, right_width = len(left.schema), len(right.schema)
    tuples = [
        window_to_tuple(w, left_width, right_width, left_is_positive=True)
        for w in (*windows.unmatched_r, *windows.overlapping, *windows.negating_r)
    ]
    tuples.extend(
        window_to_tuple(w, left_width, right_width, left_is_positive=False)
        for w in (*windows.unmatched_s, *windows.negating_s)
    )
    return _finalise(
        merged_left, tuples, schema, f"{left.name} ⟗ {right.name}", compute_probabilities
    )


def tp_inner_join(
    left: TPRelation,
    right: TPRelation,
    theta: ThetaCondition,
    compute_probabilities: bool = True,
) -> TPRelation:
    """TP inner join: overlapping windows only (no negation involved).

    Not one of the paper's joins *with negation*, but the natural companion
    operator and the positive part shared by all of them.
    """
    events = left.events.merge(right.events)
    merged_left = TPRelation(
        left.schema, left.tuples, events, name=left.name, check_constraint=False
    )
    windows = overlapping_windows(merged_left, right, theta)
    schema = _output_schema(left, right)
    left_width, right_width = len(left.schema), len(right.schema)
    tuples = [
        window_to_tuple(w, left_width, right_width, left_is_positive=True) for w in windows
    ]
    return _finalise(
        merged_left, tuples, schema, f"{left.name} ⋈ {right.name}", compute_probabilities
    )


# --------------------------------------------------------------------------- #
# measurement entry points used by the figures' benchmarks
# --------------------------------------------------------------------------- #
def nj_wuo(positive: TPRelation, negative: TPRelation, theta: ThetaCondition) -> list[Window]:
    """NJ's WUO computation (overlap join + LAWAU) — the Fig. 5 measurement."""
    return lawau(overlap_join(positive, negative, theta))


def nj_wn(positive: TPRelation, negative: TPRelation, theta: ThetaCondition) -> list[Window]:
    """NJ's negating windows only (LAWAN sweep output) — the Fig. 6 WN series."""
    return negating_windows(overlap_join(positive, negative, theta))


def nj_wuon(positive: TPRelation, negative: TPRelation, theta: ThetaCondition) -> list[Window]:
    """NJ's full window pipeline WUON (WUO + WN) — the Fig. 6 WUON series."""
    return lawan(overlap_join(positive, negative, theta))
