"""Overlapping-window computation (the conventional outer join step).

The NJ pipeline starts by evaluating the conventional left outer join
``r ⟕_{θo ∧ θ} s`` with the overlap predicate ``θo : r.T ∩ s.T ≠ ∅`` and the
join condition θ on the non-temporal attributes.  Its result contains

* one **overlapping window** per matching pair ``(r, s)`` whose intervals
  overlap, spanning exactly ``r.T ∩ s.T``, and
* one **unmatched window** for every ``r`` tuple that matches *no* ``s``
  tuple at all, spanning ``r``'s full interval

and, crucially, every window is "enhanced with the initial time-interval of
the tuple of r valid over [it]" so the later sweeps can work with it without
going back to the base relation.  In this implementation the enhancement is
the :attr:`Window.source_interval` field, and windows are additionally kept
grouped per originating ``r`` tuple (the paper's grouping by ``Fr`` and the
initial interval), which is what both LAWAU and LAWAN consume.

For equi-join conditions the pairing uses hash partitioning on the join key
followed by a per-partition sort-merge over interval start points; for a
general θ it falls back to a nested loop.  Either way the produced window
stream per ``r`` tuple is ordered by overlap start, the order required by the
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..relation import TPRelation, TPTuple, ThetaCondition
from ..temporal import Interval
from .windows import Window, WindowClass


@dataclass(frozen=True, slots=True)
class OverlapRecord:
    """One row of the conventional outer join ``r ⟕_{θo ∧ θ} s``.

    ``s`` is ``None`` for the rows padded by the outer join (an ``r`` tuple
    with no overlapping, θ-matching partner), in which case ``interval`` is
    ``r``'s full interval.
    """

    r: TPTuple
    s: Optional[TPTuple]
    interval: Interval

    @property
    def is_unmatched(self) -> bool:
        """Whether this record is an outer-join padded (unmatched) row."""
        return self.s is None

    def to_window(self) -> Window:
        """Render the record as a generalized lineage-aware temporal window."""
        if self.s is None:
            return Window(
                fact_r=self.r.fact,
                fact_s=None,
                interval=self.interval,
                lineage_r=self.r.lineage,
                lineage_s=None,
                window_class=WindowClass.UNMATCHED,
                source_interval=self.r.interval,
            )
        return Window(
            fact_r=self.r.fact,
            fact_s=self.s.fact,
            interval=self.interval,
            lineage_r=self.r.lineage,
            lineage_s=self.s.lineage,
            window_class=WindowClass.OVERLAPPING,
            source_interval=self.r.interval,
        )


@dataclass(slots=True)
class OverlapGroup:
    """All overlap records of one ``r`` tuple, ordered by overlap start.

    ``matches`` is empty exactly when the ``r`` tuple is fully unmatched; in
    that case the conventional outer join emits a single padded record, which
    :meth:`records` reproduces.
    """

    r: TPTuple
    matches: list[OverlapRecord] = field(default_factory=list)

    def records(self) -> list[OverlapRecord]:
        """The outer-join rows for this group (padded row when no matches)."""
        if not self.matches:
            return [OverlapRecord(self.r, None, self.r.interval)]
        return list(self.matches)

    def match_count(self) -> int:
        return len(self.matches)


def overlap_join(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
) -> list[OverlapGroup]:
    """Compute the conventional outer join ``r ⟕_{θo ∧ θ} s`` grouped by ``r`` tuple.

    Groups preserve the iteration order of ``positive``; matches within a
    group are ordered by overlap start (ties broken by overlap end and the
    negative tuple's fact) — the order LAWAU and LAWAN require.
    """
    groups = [OverlapGroup(r) for r in positive]
    if theta.is_equi:
        _pair_equi(groups, negative, theta)
    else:
        _pair_nested_loop(groups, negative, theta)
    for group in groups:
        group.matches.sort(key=_match_order)
    return groups


def iter_overlap_records(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
) -> Iterator[OverlapRecord]:
    """Pipelined variant: yield the outer-join rows group by group."""
    for group in overlap_join(positive, negative, theta):
        yield from group.records()


def _match_order(record: OverlapRecord) -> tuple:
    assert record.s is not None
    return (record.interval.start, record.interval.end, record.s.key())


def _pair_equi(
    groups: list[OverlapGroup], negative: TPRelation, theta: ThetaCondition
) -> None:
    """Hash-partition both inputs on the join key, then merge per partition."""
    partitions: dict[object, list[TPTuple]] = {}
    for s in negative:
        partitions.setdefault(theta.right_key(s), []).append(s)
    for bucket in partitions.values():
        bucket.sort(key=lambda t: (t.start, t.end))
    for group in groups:
        key = theta.left_key(group.r)
        bucket = partitions.get(key)
        if not bucket:
            continue
        _merge_bucket(group, bucket, theta)


def _merge_bucket(
    group: OverlapGroup, bucket: list[TPTuple], theta: ThetaCondition
) -> None:
    """Collect overlaps of ``group.r`` against a start-sorted bucket."""
    r = group.r
    for s in bucket:
        if s.start >= r.end:
            break
        overlap = r.interval.intersect(s.interval)
        if overlap is None:
            continue
        # For composite equi-keys the hash key already guarantees θ, but a
        # general ThetaCondition may carry extra non-equality conjuncts, so
        # the predicate is still evaluated.
        if theta.evaluate(r, s):
            group.matches.append(OverlapRecord(r, s, overlap))


def _pair_nested_loop(
    groups: list[OverlapGroup], negative: TPRelation, theta: ThetaCondition
) -> None:
    """General-θ pairing: compare every (r, s) pair."""
    negative_sorted = sorted(negative, key=lambda t: (t.start, t.end))
    for group in groups:
        r = group.r
        for s in negative_sorted:
            if s.start >= r.end:
                break
            overlap = r.interval.intersect(s.interval)
            if overlap is None:
                continue
            if theta.evaluate(r, s):
                group.matches.append(OverlapRecord(r, s, overlap))


def overlapping_windows(
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
) -> list[Window]:
    """Only the overlapping windows ``WO(r; s, θ)`` (used by tests and WO-only joins)."""
    windows: list[Window] = []
    for group in overlap_join(positive, negative, theta):
        for record in group.matches:
            windows.append(record.to_window())
    return windows
