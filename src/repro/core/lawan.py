"""LAWAN — Lineage-Aware Window Algorithm for Negating windows.

LAWAN extends the set ``WUO`` produced by LAWAU (all overlapping and
unmatched windows, grouped per positive-relation tuple and ordered by start)
with the **negating windows**: for every maximal sub-interval of an ``r``
tuple during which the set of valid, θ-matching ``s`` tuples is constant and
non-empty, a window carrying the disjunction of those tuples' lineages.

The sweep follows the paper's description:

* windows are processed group by group (same ``Fr`` / same originating ``r``
  tuple) in start order;
* a **priority queue** keyed on interval end point holds the lineages of the
  ``s`` tuples whose overlapping windows are currently "active";
* a new negating window is emitted at every starting and ending point within
  the group — i.e. whenever an ``s`` tuple starts or stops being valid — with
  ``λs`` equal to the disjunction of the lineages currently in the queue
  (the paper's Fig. 4 cases: the next boundary is either the next window's
  start, the smallest end point in the queue, or the start of a new group);
* unmatched and overlapping windows of ``WUO`` are copied to the output
  unchanged, interleaved with the negating windows they give rise to.

The module also contains :func:`lawan_rescan`, a deliberately simpler variant
that re-scans the active matches for every elementary segment instead of
maintaining the priority queue.  It produces the same windows and exists only
as the comparison point for the ablation benchmark (DESIGN.md, ablation A1).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Iterable, Iterator

from ..lineage import LineageExpr, disjunction_of
from ..temporal import Interval
from .overlap import OverlapGroup
from .lawau import iter_lawau
from .windows import Window, WindowClass


def lawan(groups: Iterable[OverlapGroup]) -> list[Window]:
    """Run the full NJ window pipeline: overlap join → LAWAU → LAWAN.

    Returns ``WUON``: every overlapping, unmatched and negating window of the
    positive relation with respect to the negative one.
    """
    return list(iter_lawan(groups))


def iter_lawan(groups: Iterable[OverlapGroup]) -> Iterator[Window]:
    """Pipelined LAWAN: yield overlapping, unmatched and negating windows.

    The unmatched and overlapping windows are produced by the embedded LAWAU
    sweep (they must be copied to the output); negating windows are
    interleaved per group, ordered by start.
    """
    for group in groups:
        # Copy WUO windows of this group to the output (the paper: "the
        # unmatched and overlapping windows in WUO need to be also copied").
        yield from iter_lawau([group])
        # Emit the group's negating windows from the priority-queue sweep.
        yield from _negating_sweep(group)


def negating_windows(groups: Iterable[OverlapGroup]) -> list[Window]:
    """Only the negating windows ``WN(r; s, θ)`` (the paper's WN measurement)."""
    windows: list[Window] = []
    for group in groups:
        windows.extend(_negating_sweep(group))
    return windows


def _negating_sweep(group: OverlapGroup) -> Iterator[Window]:
    """Priority-queue sweep over one group's overlapping windows.

    The queue holds ``(end, tiebreak, lineage)`` entries for the currently
    active overlapping windows.  Between two consecutive boundaries (window
    starts and ends) the active set is constant; if it is non-empty, that
    segment is a negating window whose ``λs`` is the disjunction of the
    active lineages.
    """
    matches = group.matches
    if not matches:
        return
    r = group.r
    tiebreak = count()
    queue: list[tuple[int, int, LineageExpr]] = []
    index = 0
    total = len(matches)
    current_time: int | None = None

    while index < total or queue:
        if not queue:
            # Case 3 of Fig. 4: a new (sub-)group of overlapping windows
            # starts; jump the sweep position to its first start point.
            current_time = matches[index].interval.start
            while index < total and matches[index].interval.start == current_time:
                record = matches[index]
                heapq.heappush(queue, (record.interval.end, next(tiebreak), record.s.lineage))
                index += 1
            continue

        next_start = matches[index].interval.start if index < total else None
        smallest_end = queue[0][0]
        if next_start is not None and next_start < smallest_end:
            boundary = next_start
        else:
            boundary = smallest_end

        assert current_time is not None
        if boundary > current_time:
            lineage_s = disjunction_of(entry[2] for entry in queue)
            yield Window(
                fact_r=r.fact,
                fact_s=None,
                interval=Interval(current_time, boundary),
                lineage_r=r.lineage,
                lineage_s=lineage_s,
                window_class=WindowClass.NEGATING,
                source_interval=r.interval,
            )
            current_time = boundary

        # Admit windows starting at the boundary, then retire finished ones.
        while index < total and matches[index].interval.start == boundary:
            record = matches[index]
            heapq.heappush(queue, (record.interval.end, next(tiebreak), record.s.lineage))
            index += 1
        while queue and queue[0][0] <= current_time:
            heapq.heappop(queue)


def lawan_rescan(groups: Iterable[OverlapGroup]) -> list[Window]:
    """Ablation variant of LAWAN without the priority queue.

    For every elementary segment of an ``r`` tuple's interval (split at every
    start and end of a matching overlapping window) the active matches are
    re-scanned from scratch.  Asymptotically this is quadratic in the number
    of concurrent matches per tuple, whereas the queue-based sweep is
    log-linear; the ablation benchmark measures the difference.  The output
    windows are identical.
    """
    windows: list[Window] = []
    for group in groups:
        if not group.matches:
            continue
        r = group.r
        boundaries: set[int] = set()
        for record in group.matches:
            boundaries.add(record.interval.start)
            boundaries.add(record.interval.end)
        ordered = sorted(boundaries)
        for start, end in zip(ordered, ordered[1:]):
            segment = Interval(start, end)
            active = [
                record.s.lineage
                for record in group.matches
                if record.interval.contains_interval(segment)
            ]
            if not active:
                continue
            windows.append(
                Window(
                    fact_r=r.fact,
                    fact_s=None,
                    interval=segment,
                    lineage_r=r.lineage,
                    lineage_s=disjunction_of(active),
                    window_class=WindowClass.NEGATING,
                    source_interval=r.interval,
                )
            )
    return windows
