"""LAWAU — Lineage-Aware Window Algorithm for Unmatched windows.

LAWAU extends the result of the conventional outer join ``r ⟕_{θo ∧ θ} s``
(the overlapping windows plus the fully-unmatched rows) with the *remaining*
unmatched windows: the maximal sub-intervals of an ``r`` tuple's interval
during which no ``s`` tuple is valid or satisfies θ, even though the tuple
does have matches elsewhere in its lifetime.

The algorithm is a single sweep per ``r`` tuple over its overlapping windows,
ordered by start (the grouping and ordering are established by
:func:`repro.core.overlap.overlap_join`).  A sweeping window
``[windTs, windTe)`` is advanced through the tuple's initial interval; the
paper's Fig. 3 distinguishes five cases for where the sweeping window ends —
they collapse to the following three situations during the sweep:

1. the next overlapping window starts after ``windTs``  → the gap
   ``[windTs, nextStart)`` is an unmatched window (Fig. 3 cases 1–2);
2. the next overlapping window starts at or before ``windTs`` → no gap, the
   sweep position advances to the end of that window if it extends further
   (cases 3–4);
3. there is no further overlapping window and ``windTs`` is still before the
   tuple's end → the tail ``[windTs, r.Te)`` is an unmatched window (case 5).

Existing windows (overlapping and fully-unmatched) are copied to the output
unchanged, so the result ``WUO`` contains every overlapping and every
unmatched window of ``r`` with respect to ``s`` — the input LAWAN expects.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..temporal import Interval
from .overlap import OverlapGroup
from .windows import Window, WindowClass


def lawau(groups: Iterable[OverlapGroup]) -> list[Window]:
    """Run LAWAU over the grouped overlap-join result.

    Returns the set ``WUO``: all overlapping windows plus all unmatched
    windows, in per-group temporal order (unmatched gaps interleaved with the
    overlapping windows they border).
    """
    return list(iter_lawau(groups))


def iter_lawau(groups: Iterable[OverlapGroup]) -> Iterator[Window]:
    """Pipelined LAWAU: yield the windows of ``WUO`` group by group."""
    for group in groups:
        yield from _sweep_group(group)


def _sweep_group(group: OverlapGroup) -> Iterator[Window]:
    """Sweep one ``r`` tuple's interval and emit its WUO windows in order."""
    r = group.r
    if not group.matches:
        # The conventional outer join already pads fully-unmatched tuples;
        # copy that padded row through as an unmatched window over r.T.
        yield _unmatched(r.fact, r.lineage, r.interval, r.interval)
        return

    wind_ts = r.start
    for record in group.matches:
        overlap = record.interval
        if overlap.start > wind_ts:
            # Case 1/2: a gap before the next overlapping window.
            yield _unmatched(r.fact, r.lineage, Interval(wind_ts, overlap.start), r.interval)
            wind_ts = overlap.start
        # Copy the overlapping window (enhanced with r's initial interval).
        yield record.to_window()
        if overlap.end > wind_ts:
            # Case 3/4: advance the sweep past the covered part.
            wind_ts = overlap.end
    if wind_ts < r.end:
        # Case 5: the tail of r's interval after the last overlapping window.
        yield _unmatched(r.fact, r.lineage, Interval(wind_ts, r.end), r.interval)


def _unmatched(fact, lineage, interval: Interval, source: Interval) -> Window:
    return Window(
        fact_r=fact,
        fact_s=None,
        interval=interval,
        lineage_r=lineage,
        lineage_s=None,
        window_class=WindowClass.UNMATCHED,
        source_interval=source,
    )


def unmatched_windows(groups: Iterable[OverlapGroup]) -> list[Window]:
    """Only the unmatched windows ``WU(r; s, θ)`` from a LAWAU run."""
    return [w for w in iter_lawau(groups) if w.window_class is WindowClass.UNMATCHED]
