"""Generalized lineage-aware temporal windows.

The central data structure of the paper: a window
``w = (Fr, Fs, T, λr, λs)`` binds an interval to the lineages of the matching
valid tuples of each input relation.  Given two TP relations ``r`` and ``s``
and a join condition ``θ``, the windows of ``r`` with respect to ``s`` fall
into three disjoint classes (the paper's Table I):

* **overlapping** — ``T = r.T ∩ s.T`` for a matching pair ``(r, s)``; both
  facts and both lineages are those of the pair.
* **unmatched** — a maximal sub-interval of an ``r`` tuple's interval during
  which no ``s`` tuple is valid and satisfies θ; ``Fs`` and ``λs`` are null.
* **negating** — a maximal sub-interval of an ``r`` tuple's interval during
  which the set of valid, θ-matching ``s`` tuples is constant and non-empty;
  ``Fs`` is null and ``λs`` is the disjunction of the matching lineages.

Besides the :class:`Window` record used by the algorithms, this module also
provides *declarative* predicates that restate Table I directly in terms of
per-time-point matching lineages.  The algorithms never call them (they would
be quadratic); the test suite uses them to verify that every window emitted
by LAWAU / LAWAN satisfies its class definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..lineage import FALSE, LineageExpr, disjunction_of, equivalent
from ..relation import TPRelation, TPTuple, ThetaCondition
from ..temporal import Interval


class WindowClass(str, Enum):
    """The three disjoint window classes of the paper's Table I."""

    OVERLAPPING = "overlapping"
    UNMATCHED = "unmatched"
    NEGATING = "negating"


@dataclass(frozen=True, slots=True)
class Window:
    """A generalized lineage-aware temporal window ``(Fr, Fs, T, λr, λs)``.

    Attributes:
        fact_r: the fact of the positive-relation tuple the window belongs to.
        fact_s: the fact of the matching negative-relation tuple for
            overlapping windows; ``None`` for unmatched and negating windows.
        interval: the window's interval ``T``.
        lineage_r: the lineage ``λr`` contributed by the positive relation.
        lineage_s: the lineage ``λs`` contributed by the negative relation;
            ``None`` for unmatched windows, the matching tuple's lineage for
            overlapping windows, and the disjunction of all matching lineages
            for negating windows.
        window_class: which of the three classes the window belongs to.
        source_interval: the full validity interval of the positive-relation
            tuple the window was derived from.  Not part of the paper's
            window schema, but the overlap join "enhances every window with
            the initial time-interval of the tuple of r valid over each
            window" precisely so that LAWAU can fill the gaps; it is carried
            here for the same purpose (and dropped when output tuples are
            formed).
    """

    fact_r: tuple
    fact_s: Optional[tuple]
    interval: Interval
    lineage_r: LineageExpr
    lineage_s: Optional[LineageExpr]
    window_class: WindowClass
    source_interval: Optional[Interval] = None

    def __str__(self) -> str:
        fact_s = "null" if self.fact_s is None else str(self.fact_s)
        lineage_s = "null" if self.lineage_s is None else str(self.lineage_s)
        return (
            f"{self.window_class.value}({self.fact_r}, {fact_s}, {self.interval}, "
            f"{self.lineage_r}, {lineage_s})"
        )


@dataclass(frozen=True, slots=True)
class WindowSet:
    """All windows needed to assemble the TP joins of the paper's Table II.

    ``overlapping`` is symmetric (``WO(r;s,θ) = WO(s;r,θ)`` up to the order of
    the two facts), so it is stored once from ``r``'s perspective.
    """

    overlapping: tuple[Window, ...]
    unmatched_r: tuple[Window, ...]
    negating_r: tuple[Window, ...]
    unmatched_s: tuple[Window, ...] = ()
    negating_s: tuple[Window, ...] = ()

    def all_of_r(self) -> tuple[Window, ...]:
        """Every window of ``r`` with respect to ``s`` (WUO ∪ WN)."""
        return self.unmatched_r + self.overlapping + self.negating_r

    def counts(self) -> dict[str, int]:
        """Window counts per class (used by EXPLAIN and the harness)."""
        return {
            "overlapping": len(self.overlapping),
            "unmatched_r": len(self.unmatched_r),
            "negating_r": len(self.negating_r),
            "unmatched_s": len(self.unmatched_s),
            "negating_s": len(self.negating_s),
        }


# --------------------------------------------------------------------------- #
# Declarative (per-time-point) restatement of Table I, used for verification.
# --------------------------------------------------------------------------- #
def matching_lineage_at(
    positive_tuple: TPTuple,
    negative: TPRelation,
    theta: ThetaCondition,
    time_point: int,
) -> Optional[LineageExpr]:
    """Return ``λs,θ`` at ``time_point``: the disjunction of the lineages of
    the ``negative`` tuples valid at that time point and matching
    ``positive_tuple`` under θ, or ``None`` when there is no such tuple.

    This is the quantity written ``λ^{s,θ}_{w̃t}`` in the paper's Table I.
    """
    matching = [
        s.lineage
        for s in negative
        if time_point in s.interval and theta.evaluate(positive_tuple, s)
    ]
    if not matching:
        return None
    return disjunction_of(matching)


def _positive_tuple_for(window: Window, positive: TPRelation) -> Optional[TPTuple]:
    """Find the positive-relation tuple whose fact and lineage match the window."""
    for candidate in positive:
        if candidate.fact == window.fact_r and equivalent(candidate.lineage, window.lineage_r):
            return candidate
    return None


def is_overlapping_window(
    window: Window,
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
) -> bool:
    """Check the overlapping-window definition of Table I.

    There must be tuples ``r ∈ positive`` and ``s ∈ negative`` such that the
    window carries their facts and lineages, θ holds, and the window interval
    is exactly ``r.T ∩ s.T``.
    """
    if window.fact_s is None or window.lineage_s is None:
        return False
    for r in positive:
        if r.fact != window.fact_r or not equivalent(r.lineage, window.lineage_r):
            continue
        for s in negative:
            if s.fact != window.fact_s or not equivalent(s.lineage, window.lineage_s):
                continue
            if not theta.evaluate(r, s):
                continue
            if r.interval.intersect(s.interval) == window.interval:
                return True
    return False


def is_unmatched_window(
    window: Window,
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
) -> bool:
    """Check the unmatched-window definition of Table I.

    ``Fs`` and ``λs`` must be null; at every time point of the interval the
    positive tuple must be valid and have no θ-matching valid negative tuple;
    and the interval must be maximal (at the point before the start and at
    the end either the positive tuple is not valid or a match appears).
    """
    if window.fact_s is not None or window.lineage_s is not None:
        return False
    r = _positive_tuple_for(window, positive)
    if r is None:
        return False
    for time_point in window.interval.time_points():
        if time_point not in r.interval:
            return False
        if matching_lineage_at(r, negative, theta, time_point) is not None:
            return False
    for boundary in (window.interval.start - 1, window.interval.end):
        inside_r = boundary in r.interval
        has_match = (
            matching_lineage_at(r, negative, theta, boundary) is not None
            if inside_r
            else None
        )
        if inside_r and has_match is False:
            # The positive tuple is still valid and still unmatched beyond the
            # window boundary: the window is not maximal.
            return False
    return True


def is_negating_window(
    window: Window,
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
) -> bool:
    """Check the negating-window definition of Table I.

    ``Fs`` must be null; at every time point of the interval the positive
    tuple must be valid and ``λs`` must equal the disjunction of the matching
    valid negative lineages (which must be non-null); and the interval must
    be maximal (just outside it, either the positive tuple is invalid or the
    matching disjunction differs).
    """
    if window.fact_s is not None or window.lineage_s is None:
        return False
    r = _positive_tuple_for(window, positive)
    if r is None:
        return False
    for time_point in window.interval.time_points():
        if time_point not in r.interval:
            return False
        lineage_at_t = matching_lineage_at(r, negative, theta, time_point)
        if lineage_at_t is None or not equivalent(lineage_at_t, window.lineage_s):
            return False
    for boundary in (window.interval.start - 1, window.interval.end):
        if boundary not in r.interval:
            continue
        lineage_at_boundary = matching_lineage_at(r, negative, theta, boundary)
        if lineage_at_boundary is not None and equivalent(
            lineage_at_boundary, window.lineage_s
        ):
            # The same matching disjunction extends beyond the window: not maximal.
            return False
    return True


def classify_window(
    window: Window,
    positive: TPRelation,
    negative: TPRelation,
    theta: ThetaCondition,
) -> Optional[WindowClass]:
    """Return the (unique) class whose Table I definition the window satisfies.

    Returns ``None`` if the window satisfies no definition.  The three
    definitions are mutually exclusive by construction (they disagree on the
    nullness of ``Fs`` / ``λs``), which the test suite also verifies.
    """
    if is_overlapping_window(window, positive, negative, theta):
        return WindowClass.OVERLAPPING
    if is_unmatched_window(window, positive, negative, theta):
        return WindowClass.UNMATCHED
    if is_negating_window(window, positive, negative, theta):
        return WindowClass.NEGATING
    return None


def negating_lineage(window: Window) -> LineageExpr:
    """The negative-side lineage of a window, with null treated as ``false``."""
    return window.lineage_s if window.lineage_s is not None else FALSE
