"""Pipelined (streaming) window and join computation.

The paper's second contribution is that the window computation needs *no*
tuple replication and can be evaluated in a pipeline, which is what allows
the approach to be integrated into the executor of a DBMS such as PostgreSQL.
This module exposes the same computation as :mod:`repro.core.joins` but as
generators: windows and output tuples are produced one at a time, driven by
the consumer, and nothing beyond the current group of overlapping windows is
buffered.

The query engine's physical operators (:mod:`repro.engine.physical`) are thin
wrappers around these generators; they are also used directly by the
benchmarks that measure time-to-first-result.
"""

from __future__ import annotations

from typing import Iterator

from ..relation import Schema, TPRelation, TPTuple, ThetaCondition
from .concat import combined_output_schema, window_to_positive_tuple, window_to_tuple
from .lawan import iter_lawan
from .lawau import iter_lawau
from .overlap import overlap_join
from .windows import Window, WindowClass


def stream_wuo(
    positive: TPRelation, negative: TPRelation, theta: ThetaCondition
) -> Iterator[Window]:
    """Yield the WUO windows (overlapping + unmatched) incrementally."""
    groups = overlap_join(positive, negative, theta)
    yield from iter_lawau(groups)


def stream_windows(
    positive: TPRelation, negative: TPRelation, theta: ThetaCondition
) -> Iterator[Window]:
    """Yield the full WUON window stream (overlapping, unmatched, negating)."""
    groups = overlap_join(positive, negative, theta)
    yield from iter_lawan(groups)


def stream_anti_join(
    positive: TPRelation, negative: TPRelation, theta: ThetaCondition
) -> Iterator[TPTuple]:
    """Yield the anti-join output tuples incrementally (no materialisation)."""
    for window in stream_windows(positive, negative, theta):
        if window.window_class is WindowClass.OVERLAPPING:
            continue
        yield window_to_positive_tuple(window)


def stream_left_outer_join(
    positive: TPRelation, negative: TPRelation, theta: ThetaCondition
) -> Iterator[TPTuple]:
    """Yield the left-outer-join output tuples incrementally."""
    left_width, right_width = len(positive.schema), len(negative.schema)
    for window in stream_windows(positive, negative, theta):
        yield window_to_tuple(window, left_width, right_width, left_is_positive=True)


def output_schema(left: TPRelation, right: TPRelation) -> Schema:
    """The combined output schema used by the streaming outer join."""
    return combined_output_schema(left.schema, right.schema, right.name or "s")
