"""Lineage-concatenation functions and output-tuple formation.

An output tuple is formed for each generalized window using the facts
``(Fr, Fs)`` and the interval ``T`` in their exact form, while the output
lineage combines ``λr`` and ``λs`` with the concatenation function matched to
the window's class (Section II of the paper):

* overlapping windows use ``and``:     ``λ = λr ∧ λs``
* unmatched windows pass ``λr`` through: ``λ = λr``
* negating windows use ``andNot``:     ``λ = λr ∧ ¬λs``

Output facts are padded with ``None`` on the side a window has no fact for
(rendered as ``-`` in the paper's Fig. 1b); the anti join simply projects the
padded side away.
"""

from __future__ import annotations

from typing import Callable

from ..lineage import LineageExpr, and_not, lineage_and
from ..relation import Schema, TPTuple
from .windows import Window, WindowClass


def combined_output_schema(
    left_schema: Schema, right_schema: Schema, right_name: str = "s"
) -> Schema:
    """The combined output schema of an outer join.

    Right-side attributes clashing with a left-side name are prefixed with
    the right input's name.  This is the single definition of the rule; the
    batch joins, the streaming generators and the continuous operators all
    delegate here so their schemas cannot diverge.
    """
    left_names = set(left_schema.attributes)
    right_attributes = tuple(
        f"{right_name}.{name}" if name in left_names else name
        for name in right_schema.attributes
    )
    return Schema(left_schema.attributes + right_attributes)


def concat_and(lineage_r: LineageExpr, lineage_s: LineageExpr | None) -> LineageExpr:
    """The ``and`` concatenation used for overlapping windows."""
    if lineage_s is None:
        raise ValueError("overlapping windows must carry a negative-side lineage")
    return lineage_and(lineage_r, lineage_s)


def concat_pass(lineage_r: LineageExpr, lineage_s: LineageExpr | None) -> LineageExpr:
    """The pass-through concatenation used for unmatched windows."""
    if lineage_s is not None:
        raise ValueError("unmatched windows must not carry a negative-side lineage")
    return lineage_r


def concat_and_not(lineage_r: LineageExpr, lineage_s: LineageExpr | None) -> LineageExpr:
    """The ``andNot`` concatenation used for negating windows."""
    if lineage_s is None:
        raise ValueError("negating windows must carry a negative-side lineage")
    return and_not(lineage_r, lineage_s)


#: Concatenation function per window class (Section II of the paper).
CONCAT_BY_CLASS: dict[WindowClass, Callable[[LineageExpr, LineageExpr | None], LineageExpr]] = {
    WindowClass.OVERLAPPING: concat_and,
    WindowClass.UNMATCHED: concat_pass,
    WindowClass.NEGATING: concat_and_not,
}


def output_lineage(window: Window) -> LineageExpr:
    """The output lineage of a window under its class's concatenation function."""
    return CONCAT_BY_CLASS[window.window_class](window.lineage_r, window.lineage_s)


def window_to_tuple(
    window: Window,
    left_width: int,
    right_width: int,
    left_is_positive: bool = True,
) -> TPTuple:
    """Form the output tuple of a window for a join with a combined schema.

    Args:
        window: the generalized window.
        left_width: number of attributes of the join's left input.
        right_width: number of attributes of the join's right input.
        left_is_positive: ``True`` when the window's positive relation is the
            join's left input (windows of ``r`` w.r.t. ``s``); ``False`` for
            windows of ``s`` w.r.t. ``r`` (the right-hand sets of Table II),
            whose facts must be swapped into the right-hand columns.

    Returns:
        A :class:`TPTuple` with the combined fact (padded with ``None`` on
        the side the window has no fact for), the concatenated lineage and
        the window's interval.  The probability is left unset; callers decide
        when to compute it.
    """
    fact_positive = window.fact_r
    fact_negative = window.fact_s
    if left_is_positive:
        left_fact = fact_positive
        right_fact = fact_negative if fact_negative is not None else (None,) * right_width
    else:
        left_fact = fact_negative if fact_negative is not None else (None,) * left_width
        right_fact = fact_positive
    combined = tuple(left_fact) + tuple(right_fact)
    return TPTuple(combined, output_lineage(window), window.interval)


def window_to_positive_tuple(window: Window) -> TPTuple:
    """Form the output tuple of a window keeping only the positive fact.

    Used by the anti join, whose output schema is the positive relation's
    schema.
    """
    return TPTuple(tuple(window.fact_r), output_lineage(window), window.interval)
