"""The unified execution-knob surface: one frozen :class:`ExecutionOptions`.

Before this module, the knobs a run composes from were scattered:
transport/placement/partitions lived on ``StreamQueryConfig`` (under the
historical name ``workers``), transport/placement *again* on
``ParallelConfig`` for planner-driven runs, and per-call kwargs carried
the rest.  Checkpointed shard-failure recovery adds three more knobs
(``checkpoint_interval``, ``restart_limit``, ``seat_timeout``) that must
compose with all of the above — the forcing function for one object.

``ExecutionOptions`` is accepted uniformly by :class:`repro.Engine`,
:class:`repro.stream.StreamQuery`, :class:`repro.dataflow.DataflowQuery`
and ``python -m repro.serve``.  The legacy constructors keep working:
``StreamQueryConfig(workers=...)`` is now a deprecation shim returning an
``ExecutionOptions`` (so every attribute read old call sites perform still
resolves), and ``ParallelConfig(transport=..., placement=...)`` warns that
those two knobs moved here while continuing to honour them.

Field-name note: the transport knob is canonically ``transport``; the
read-only :attr:`ExecutionOptions.workers` alias preserves the historical
``config.workers`` spelling old code reads.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from .columnar import LAYOUTS
from .obs.metrics import DEFAULT_METRICS_INTERVAL
from .obs.trace import DEFAULT_TRACE_SAMPLE_RATE
from .runtime.placement import Placement

__all__ = ["ExecutionOptions", "LAYOUTS", "TRANSPORTS"]

#: Valid values of :attr:`ExecutionOptions.transport` for partitioned runs.
#: (Single-partition runs execute inline regardless.)
TRANSPORTS = ("threads", "processes", "sockets")


@dataclass(frozen=True)
class ExecutionOptions:
    """Every execution knob of a continuous/dataflow run, in one place.

    ``transport`` picks where partitioned workers live: ``"threads"``
    shares one interpreter (cheap, GIL-capped), ``"processes"`` runs one
    OS process per partition (true multi-core speedup), ``"sockets"`` puts
    each partition behind a TCP endpoint — locally spawned by default, or
    on the hosts ``placement`` names (start them with ``python -m
    repro.runtime.worker --listen HOST:PORT``).  Process and socket
    transports degrade to threads with a warning when workers cannot
    start.

    ``materialize_probabilities`` computes output probabilities inline
    with the maintainer-owned per-key hash-consed computers instead of
    leaving them for a later ``with_probabilities`` pass.

    ``early_emit`` publishes provisional windows before the watermark
    closes them, retracting/refining on later data (honoured by the
    dataflow executor; the planner routes stream joins through a dataflow
    plan whenever it is set).

    ``layout`` picks the window-maintainer state layout: ``"object"``
    (default) keeps per-tuple Python objects, ``"columnar"`` re-lays the
    hot state as struct-of-arrays numpy columns with vectorized
    probe/evict/finalize sweeps (:mod:`repro.columnar`) and, on the
    sockets transport, ships micro-batches as fixed-layout binary frames
    (:mod:`repro.runtime.wire`) instead of pickles.  Settled output is
    tuple-for-tuple, bitwise-probability identical across layouts; when
    numpy is not installed a columnar request degrades to ``"object"``
    with a :class:`RuntimeWarning`.

    ``metrics`` / ``metrics_interval`` instrument the run with per-worker
    registries (:mod:`repro.obs`); ``trace`` / ``trace_sample_rate``
    record span-per-element timelines.  Both are off by default — the
    uninstrumented loop is the fast path.

    Fault tolerance (sockets transport only):

    * ``restart_limit`` — how many dead/timed-out seats one run may
      recover by re-dispatching the shard spec to a fresh seat and
      replaying that shard's elements.  ``0`` (default) disables
      recovery: a dead seat fails the run, as before.
    * ``checkpoint_interval`` — seconds between worker state snapshots
      (open windows, hash-cons probability caches) shipped to the driver
      as checkpoint frames; recovery then replays only the
      post-checkpoint suffix instead of the shard's whole history.
      ``0.0`` checkpoints at every micro-batch boundary (deterministic,
      for tests); ``None`` (default) disables checkpointing, making any
      recovery a replay-from-zero.
    * ``seat_timeout`` — seconds the driver waits for a socket seat's
      result frame before declaring it dead (``None``: wait forever,
      trusting the OS to surface connection loss).
    """

    transport: str = "threads"
    partitions: int = 1
    micro_batch_size: int = 64
    buffer_capacity: int = 1024
    materialize_probabilities: bool = False
    early_emit: bool = False
    placement: Optional[Placement] = None
    metrics: bool = False
    metrics_interval: float = DEFAULT_METRICS_INTERVAL
    trace: bool = False
    trace_sample_rate: float = DEFAULT_TRACE_SAMPLE_RATE
    checkpoint_interval: Optional[float] = None
    restart_limit: int = 0
    seat_timeout: Optional[float] = None
    layout: str = "object"

    def __post_init__(self) -> None:
        if self.partitions <= 0:
            raise ValueError("partitions must be positive")
        if self.micro_batch_size <= 0:
            raise ValueError("micro_batch_size must be positive")
        if self.buffer_capacity <= 0:
            raise ValueError("buffer_capacity must be positive")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}"
            )
        if self.layout not in LAYOUTS:
            raise ValueError(f"layout must be one of {LAYOUTS}, got {self.layout!r}")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1], got {self.trace_sample_rate}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be >= 0 seconds or None, "
                f"got {self.checkpoint_interval}"
            )
        if self.restart_limit < 0:
            raise ValueError(f"restart_limit must be >= 0, got {self.restart_limit}")
        if self.seat_timeout is not None and self.seat_timeout <= 0:
            raise ValueError(
                f"seat_timeout must be positive seconds or None, "
                f"got {self.seat_timeout}"
            )

    @property
    def workers(self) -> str:
        """Legacy read alias: ``StreamQueryConfig`` called the transport
        knob ``workers``; old call sites keep reading it here."""
        return self.transport

    @property
    def recovery_enabled(self) -> bool:
        """Whether a run under these options recovers dead seats at all."""
        return self.restart_limit > 0 and self.transport == "sockets"


def deprecated_config_call(old: str, hint: str, stacklevel: int = 3) -> None:
    """Emit the one shared migration warning for a legacy config surface.

    The default ``stacklevel=3`` points at the *caller of the shim*, not
    the shim itself — the line the user should edit.  Shims one frame
    deeper (dataclass ``__post_init__``) pass 4.
    """
    warnings.warn(
        f"{old} is deprecated; {hint}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
